package fuzz

import (
	"bytes"
	"testing"
)

func TestGenerateIPCDeterministic(t *testing.T) {
	cfg := DefaultIPCGenConfig()
	a, err := GenerateIPC(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateIPC(42, cfg)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("task counts differ")
	}
	for i := range a.Caps {
		if a.Caps[i] != b.Caps[i] {
			t.Fatalf("caps differ at channel %d", i)
		}
	}
	for t2 := range a.Ops {
		for i := range a.Ops[t2] {
			if a.Ops[t2][i] != b.Ops[t2][i] {
				t.Fatalf("op %d of task %d differs", i, t2)
			}
		}
	}
	c, _ := GenerateIPC(43, cfg)
	same := true
	for t2 := range a.Ops {
		if len(a.Ops[t2]) != len(c.Ops[t2]) {
			same = false
			continue
		}
		for i := range a.Ops[t2] {
			if a.Ops[t2][i] != c.Ops[t2][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 generated identical programs")
	}
}

// Hand-built topologies pin the static derivation's semantics.
func TestDeriveIPCShapes(t *testing.T) {
	base := IPCGenConfig{Tasks: 2, Channels: 2, Ops: 2, MaxCap: 1, Fuse: 100}

	// Cross rendezvous: both send first on capacity-0 channels — a cycle.
	sc := &IPCScenario{Cfg: base, Caps: []int{0, 0}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0}, {Ch: 1}},
		{{Send: true, Ch: 1}, {Ch: 0}},
	}}
	st := DeriveIPC(sc)
	if !st.Cyclic[0] || !st.Cyclic[1] || !st.Flagged[0] || !st.Flagged[1] {
		t.Errorf("cross rendezvous not fully flagged: %+v", st)
	}

	// Matched buffered pipeline: task 0 sends, task 1 receives, cap 1
	// suffices — nothing flagged.
	sc = &IPCScenario{Cfg: base, Caps: []int{1, 1}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0}},
		{{Ch: 0}},
	}}
	if st = DeriveIPC(sc); st.FlagCount() != 0 {
		t.Errorf("matched pipeline flagged: %+v", st)
	}

	// Dropped send: the receive's only supply is lost in transit — the
	// receiver is count-flagged even though the topology looks matched.
	sc = &IPCScenario{Cfg: base, Caps: []int{1, 1}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0, Dropped: true}},
		{{Ch: 0}},
	}}
	st = DeriveIPC(sc)
	if !st.CountFlagged[1] || !st.Flagged[1] {
		t.Errorf("drop-starved receiver not flagged: %+v", st)
	}
	if st.Flagged[0] {
		t.Errorf("sender of a dropped message wrongly flagged: %+v", st)
	}

	// Self-feeder that receives before its own send: a self-edge cycle.
	sc = &IPCScenario{Cfg: IPCGenConfig{Tasks: 1, Channels: 1, Ops: 2, MaxCap: 1, Fuse: 100},
		Caps: []int{1}, Ops: [][]IPCOp{
			{{Ch: 0}, {Send: true, Ch: 0}},
		}}
	st = DeriveIPC(sc)
	if !st.Cyclic[0] || !st.Flagged[0] {
		t.Errorf("self-feeder not flagged: %+v", st)
	}
}

func TestExecIPCWedgeAndCore(t *testing.T) {
	base := IPCGenConfig{Tasks: 2, Channels: 2, Ops: 2, MaxCap: 1, Fuse: 100}
	sc := &IPCScenario{Cfg: base, Caps: []int{0, 0}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0}, {Ch: 1}},
		{{Send: true, Ch: 1}, {Ch: 0}},
	}}
	st := DeriveIPC(sc)
	res := ExecIPC(sc, st)
	if res.Outcome != Wedged {
		t.Fatalf("cross rendezvous outcome %v, want wedged", res.Outcome)
	}
	if len(res.Core) != 2 {
		t.Fatalf("core %v, want both tasks", res.Core)
	}
	if res.MismatchAt != "" {
		t.Fatalf("containment violated: %s", res.MismatchAt)
	}

	// Rendezvous pairing drains a matched pair.
	sc = &IPCScenario{Cfg: base, Caps: []int{0, 0}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0}},
		{{Ch: 0}},
	}}
	st = DeriveIPC(sc)
	if res = ExecIPC(sc, st); res.Outcome != Completed {
		t.Fatalf("matched rendezvous outcome %v, want completed", res.Outcome)
	}
}

// The acceptance-criterion sweep: >= 1e4 seeds of random IPC topologies, the
// static flag set containing the runtime core on every one of them, with
// both outcomes represented and the static bound non-vacuous.
func TestIPCSweepContainmentAtScale(t *testing.T) {
	sw := DefaultIPCSweep(2100, 0x1bc5eed)
	rep, err := RunIPCSweep(sw, 4)
	if err != nil {
		t.Fatalf("containment broke: %v", err)
	}
	totalSeeds, wedged, completed := 0, 0, 0
	for _, p := range rep.Points {
		totalSeeds += p.Seeds
		wedged += p.Wedged
		completed += p.Completed
		if p.FuseExceeded > 0 {
			t.Errorf("point %s: %d runs hit the fuse; the executor should quiesce", p.Label, p.FuseExceeded)
		}
		if p.WedgeProbability > p.StaticFlagProbability {
			t.Errorf("point %s: wedge probability %.4f exceeds the static bound %.4f",
				p.Label, p.WedgeProbability, p.StaticFlagProbability)
		}
		if p.MeanFlaggedTasks > 0.9*float64(p.Gen.Tasks) {
			t.Errorf("point %s: mean flagged tasks %.2f of %d — the static set barely discriminates",
				p.Label, p.MeanFlaggedTasks, p.Gen.Tasks)
		}
	}
	if totalSeeds < 10_000 {
		t.Fatalf("swept %d seeds, want >= 1e4", totalSeeds)
	}
	if wedged == 0 {
		t.Error("no run wedged; the containment check proved nothing")
	}
	if completed == 0 {
		t.Error("no run completed; the generator only builds broken topologies")
	}
}

// Worker count must never change a byte of the report.
func TestIPCSweepParallelDeterminism(t *testing.T) {
	sw := DefaultIPCSweep(600, 7)
	sw.ChunkSize = 128
	r1, err := RunIPCSweep(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunIPCSweep(sw, 8)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := r1.JSON()
	j8, _ := r8.JSON()
	if !bytes.Equal(j1, j8) {
		t.Errorf("worker count changed the report:\n%s\n---\n%s", j1, j8)
	}
}

func TestIPCSweepValidation(t *testing.T) {
	if _, err := RunIPCSweep(IPCSweep{}, 1); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunIPCSweep(IPCSweep{Points: []IPCPoint{{Label: "x"}}, Seeds: 1}, 1); err == nil {
		t.Error("invalid gen config accepted")
	}
	if _, err := GenerateIPC(1, IPCGenConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

// Hand-built scenarios pin the delay/duplicate transit semantics: a delayed
// message holds its slot from the send but is invisible to receivers until
// it arrives, and a duplicate lands only when the buffer has a free slot.
func TestExecIPCDelayAndDup(t *testing.T) {
	base := IPCGenConfig{Tasks: 2, Channels: 1, Ops: 2, MaxCap: 2, Fuse: 100}

	// Delayed delivery: the receiver must idle until the message arrives,
	// then the run completes — in-flight messages are not quiescence.
	sc := &IPCScenario{Cfg: base, Caps: []int{1}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0, Delay: 5}},
		{{Ch: 0}},
	}}
	st := DeriveIPC(sc)
	if st.FlagCount() != 0 {
		t.Errorf("delay-only pipeline statically flagged: %+v", st)
	}
	res := ExecIPC(sc, st)
	if res.Outcome != Completed || res.Delayed != 1 {
		t.Errorf("delayed pipeline: outcome %v delayed %d, want completed with 1 in-flight message", res.Outcome, res.Delayed)
	}
	if res.Rounds < 5 {
		t.Errorf("delayed pipeline finished in %d rounds; the 5-round transit cannot have been honored", res.Rounds)
	}

	// Duplicate with a free slot: the second copy lands and feeds the
	// second receive, so the nominally under-supplied program completes.
	sc = &IPCScenario{Cfg: base, Caps: []int{2}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0, Dup: true}},
		{{Ch: 0}, {Ch: 0}},
	}}
	st = DeriveIPC(sc)
	// Static minimum supply excludes the dup, so the receiver stays
	// (soundly) flagged even though this schedule happens to complete.
	if !st.CountFlagged[1] {
		t.Errorf("dup-fed receiver not count-flagged against the minimum supply: %+v", st)
	}
	res = ExecIPC(sc, st)
	if res.Outcome != Completed || res.Duplicated != 1 {
		t.Errorf("dup-fed pipeline: outcome %v duplicated %d, want completed with 1 landed dup", res.Outcome, res.Duplicated)
	}
	if res.MismatchAt != "" {
		t.Errorf("containment violated: %s", res.MismatchAt)
	}

	// Duplicate on a full buffer is lost: capacity 1 leaves no slot for the
	// copy, the second receive starves, and the static derivation covers
	// the wedge because it never counted the dup as guaranteed supply.
	sc = &IPCScenario{Cfg: base, Caps: []int{1}, Ops: [][]IPCOp{
		{{Send: true, Ch: 0, Dup: true}},
		{{Ch: 0}, {Ch: 0}},
	}}
	st = DeriveIPC(sc)
	res = ExecIPC(sc, st)
	if res.Outcome != Wedged || res.Duplicated != 0 {
		t.Errorf("dup-on-full: outcome %v duplicated %d, want wedged with the dup lost", res.Outcome, res.Duplicated)
	}
	if len(res.Core) != 1 || res.Core[0] != 1 {
		t.Errorf("dup-on-full core %v, want the starved receiver", res.Core)
	}
	if res.MismatchAt != "" {
		t.Errorf("containment violated: %s", res.MismatchAt)
	}
}

// A config with the fault probabilities at zero must not consume any extra
// random draws: channel capacities and programs stay byte-identical to the
// pre-fault generator, and no op carries a delay or dup mark.
func TestGenerateIPCFaultDrawGating(t *testing.T) {
	plain := DefaultIPCGenConfig()
	sc, err := GenerateIPC(99, plain)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range sc.Ops {
		for _, op := range sc.Ops[t2] {
			if op.Delay != 0 || op.Dup {
				t.Fatalf("zero-probability config produced fault op %+v", op)
			}
		}
	}
	// The capacity draws precede the message loop, so they are identical
	// whatever the fault knobs say.
	faulty := plain
	faulty.PDelay, faulty.MaxDelay, faulty.PDup = 0.5, 3, 0.5
	sf, err := GenerateIPC(99, faulty)
	if err != nil {
		t.Fatal(err)
	}
	for c := range sc.Caps {
		if sc.Caps[c] != sf.Caps[c] {
			t.Fatalf("fault knobs changed the capacity stream at channel %d", c)
		}
	}
}

// The fault overlay keeps the two standing sweep invariants: the static
// flag set contains every runtime core, and the report is byte-identical
// at any worker width — asserted non-vacuously (faults actually fired).
func TestIPCFaultSweepContainmentAndParallelDeterminism(t *testing.T) {
	sw := FaultIPCSweep(900, 0xde1a7)
	sw.ChunkSize = 128
	r1, err := RunIPCSweep(sw, 1)
	if err != nil {
		t.Fatalf("containment broke under transit faults: %v", err)
	}
	r4, err := RunIPCSweep(sw, 4)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := r1.JSON()
	j4, _ := r4.JSON()
	if !bytes.Equal(j1, j4) {
		t.Errorf("worker count changed the fault-overlay report:\n%s\n---\n%s", j1, j4)
	}
	delayed, duplicated, wedged := 0, 0, 0
	for _, p := range r1.Points {
		delayed += p.DelayedSends
		duplicated += p.DuplicatedSends
		wedged += p.Wedged
		if p.FuseExceeded > 0 {
			t.Errorf("point %s: %d runs hit the fuse; delayed messages must still quiesce", p.Label, p.FuseExceeded)
		}
		if p.WedgeProbability > p.StaticFlagProbability {
			t.Errorf("point %s: wedge probability %.4f exceeds the static bound %.4f",
				p.Label, p.WedgeProbability, p.StaticFlagProbability)
		}
	}
	if delayed == 0 || duplicated == 0 {
		t.Errorf("fault overlay fired %d delays and %d dups; the sweep proved nothing", delayed, duplicated)
	}
	if wedged == 0 {
		t.Error("no run wedged under the fault overlay; the containment check proved nothing")
	}
}
