// The IPC-topology dimension: seeded random message-passing scenarios —
// tasks running straight-line send/recv programs over shared channels
// (buffered queues and capacity-0 rendezvous points) with a message-loss
// overlay — executed by a deterministic round-robin scheduler until
// completion or quiescence.  The standing invariant is the IPC analogue of
// the lock dimension's static ⊇ runtime contract: every task blocked at
// quiescence (the abstract IPC deadlock core) must be in the statically
// derived flagged set of the same scenario.
//
// The static derivation is sound by construction for this model.  A task
// stuck forever on a channel implies either a count deficit on that channel
// (more blocking demands than effective supply) or a wait edge to another
// stuck task; following edges inside the finite stuck set ends in a count
// deficit or a cycle.  So: seed the flag set with count-flagged tasks and
// tasks on wait-graph cycles, then propagate backwards along wait edges —
// a task whose blocking op has ANY flagged counterparty may be starved by
// it.  (The deltalint ipc pass propagates only when ALL counterparties are
// flagged — a precision choice fit for lint noise, not for a proof
// obligation; this derivation must never under-approximate.)

package fuzz

import (
	"encoding/json"
	"fmt"

	"deltartos/internal/campaign"
	"deltartos/internal/det"
)

// IPCGenConfig parameterizes the IPC-topology generator at one sweep point.
type IPCGenConfig struct {
	// Tasks and Channels size the system.
	Tasks    int `json:"tasks"`
	Channels int `json:"channels"`
	// Ops is the average number of operations per task: the generator emits
	// Tasks*Ops/2 messages, each one send op in the sender's program and one
	// recv op in the receiver's.  Message-matched generation keeps the
	// fault-free baseline mostly completing, so the wedge curve is driven by
	// the loss overlay and by ordering, not by trivial count imbalance.
	Ops int `json:"ops"`
	// PZeroCap is the probability a channel is a capacity-0 rendezvous
	// point; otherwise its capacity is uniform in [1, MaxCap].
	PZeroCap float64 `json:"p_zero_cap"`
	MaxCap   int     `json:"max_cap"`
	// PDrop marks a send as lost in transit: it completes instantly and
	// delivers nothing — the generative analogue of the fault injector's
	// msg-drop.
	PDrop float64 `json:"p_drop"`
	// PDelay marks a buffered send as delayed in transit: the slot is
	// reserved when the send completes but the message only becomes visible
	// to receivers 1..MaxDelay rounds later — the analogue of msg-delay.
	// Zero keeps the generator's random stream identical to pre-delay
	// configs (the draw is gated, not wasted).
	PDelay   float64 `json:"p_delay"`
	MaxDelay int     `json:"max_delay"`
	// PDup marks a buffered send as duplicated in transit: a second copy
	// arrives alongside the first if the channel has a free slot, and is
	// lost otherwise — the analogue of msg-dup.  Zero is draw-gated like
	// PDelay.
	PDup float64 `json:"p_dup"`
	// Fuse bounds the scheduler rounds of one run (a safety net; the
	// round-robin executor quiesces on its own).
	Fuse int `json:"fuse"`
}

// DefaultIPCGenConfig is the base parameter point of the IPC sweep.  The
// topology is kept sparse (channels outnumber tasks, short programs) so the
// wait graph does not collapse into one all-task component — the static
// flag set has to discriminate for its containment bound to mean anything.
func DefaultIPCGenConfig() IPCGenConfig {
	return IPCGenConfig{
		Tasks:    5,
		Channels: 16,
		Ops:      3,
		PZeroCap: 0.25,
		MaxCap:   3,
		PDrop:    0.1,
		Fuse:     10_000,
	}
}

func (c IPCGenConfig) validate() error {
	switch {
	case c.Tasks < 1:
		return fmt.Errorf("fuzz: ipc: need at least one task")
	case c.Channels < 1:
		return fmt.Errorf("fuzz: ipc: need at least one channel")
	case c.Ops < 1:
		return fmt.Errorf("fuzz: ipc: need at least one op per task")
	case c.MaxCap < 1:
		return fmt.Errorf("fuzz: ipc: need MaxCap >= 1")
	case c.PDelay > 0 && c.MaxDelay < 1:
		return fmt.Errorf("fuzz: ipc: PDelay > 0 needs MaxDelay >= 1")
	case c.Fuse < 1:
		return fmt.Errorf("fuzz: ipc: need a positive round fuse")
	}
	return nil
}

// IPCOp is one instruction of a task's message program.
type IPCOp struct {
	Send    bool
	Ch      int
	Dropped bool // send only: lost in transit
	Delay   int  // send only: rounds in transit before receivers see it
	Dup     bool // send only: a second copy arrives if a slot is free
}

// IPCScenario is one generated message-passing workload.
type IPCScenario struct {
	Seed uint64
	Cfg  IPCGenConfig
	Caps []int     // channel capacities; 0 = rendezvous
	Ops  [][]IPCOp // per-task straight-line programs
}

// GenerateIPC builds the IPC scenario for one (seed, config) pair.  Equal
// inputs yield byte-identical scenarios: all randomness flows through one
// seeded splitmix64 stream drawn in a fixed order.
func GenerateIPC(seed uint64, cfg IPCGenConfig) (*IPCScenario, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := det.New(seed)
	sc := &IPCScenario{Seed: seed, Cfg: cfg, Caps: make([]int, cfg.Channels)}
	for c := range sc.Caps {
		if rng.Float64() < cfg.PZeroCap {
			sc.Caps[c] = 0
		} else {
			sc.Caps[c] = 1 + rng.Intn(cfg.MaxCap)
		}
	}
	sc.Ops = make([][]IPCOp, cfg.Tasks)
	msgs := cfg.Tasks * cfg.Ops / 2
	if msgs < 1 {
		msgs = 1
	}
	for m := 0; m < msgs; m++ {
		c := rng.Intn(cfg.Channels)
		s := rng.Intn(cfg.Tasks)
		r := s
		if cfg.Tasks > 1 {
			// Receiver distinct from sender: a task cannot rendezvous with
			// itself, and self-delivery adds nothing the unit shapes don't
			// already pin.
			r = rng.Intn(cfg.Tasks - 1)
			if r >= s {
				r++
			}
		}
		op := IPCOp{Send: true, Ch: c, Dropped: rng.Float64() < cfg.PDrop}
		// The delay/dup draws are gated behind their probabilities so a
		// config with both at zero consumes exactly the pre-fault stream —
		// old (seed, config) pairs keep their byte-identical scenarios.
		if cfg.PDelay > 0 && rng.Float64() < cfg.PDelay {
			op.Delay = 1 + rng.Intn(cfg.MaxDelay)
		}
		if cfg.PDup > 0 {
			op.Dup = rng.Float64() < cfg.PDup
		}
		sc.Ops[s] = append(sc.Ops[s], op)
		sc.Ops[r] = append(sc.Ops[r], IPCOp{Ch: c})
	}
	return sc, nil
}

// IPCStatic is the statically derived over-approximation of which tasks a
// run of the scenario can leave irreducibly stuck.
type IPCStatic struct {
	// Flagged[t] reports whether task t is statically suspect.
	Flagged []bool
	// CountFlagged and Cyclic are the seed sets (kept for diagnostics).
	CountFlagged []bool
	Cyclic       []bool
}

// FlagCount returns the number of flagged tasks.
func (st *IPCStatic) FlagCount() int {
	n := 0
	for _, f := range st.Flagged {
		if f {
			n++
		}
	}
	return n
}

// DeriveIPC computes the static flag set of a scenario.
func DeriveIPC(sc *IPCScenario) *IPCStatic {
	nT, nC := sc.Cfg.Tasks, sc.Cfg.Channels
	recvs := make([]int, nC)    // total receive demands per channel
	minSends := make([]int, nC) // guaranteed supply: non-dropped sends, dups excluded (a dup is lost when the buffer is full)
	maxSends := make([]int, nC) // possible supply: non-dropped sends, dups counted twice
	hasRecv := make([][]bool, nT)
	hasEffSend := make([][]bool, nT)
	for t := range sc.Ops {
		hasRecv[t] = make([]bool, nC)
		hasEffSend[t] = make([]bool, nC)
		for _, op := range sc.Ops[t] {
			if op.Send {
				if !op.Dropped {
					minSends[op.Ch]++
					maxSends[op.Ch]++
					if op.Dup {
						maxSends[op.Ch]++
					}
					hasEffSend[t][op.Ch] = true
				}
			} else {
				recvs[op.Ch]++
				hasRecv[t][op.Ch] = true
			}
		}
	}

	st := &IPCStatic{
		Flagged:      make([]bool, nT),
		CountFlagged: make([]bool, nT),
		Cyclic:       make([]bool, nT),
	}

	// Count rules: a channel with more blocking demands than supply starves
	// (or sticks) someone; which task loses depends on ordering, so every
	// task on the losing side is flagged.  The two rules bracket the dup
	// uncertainty from opposite sides: receivers are starved against the
	// guaranteed minimum supply (a dup may be lost), senders overflow
	// against the possible maximum (a dup may land and hold a slot).
	for c := 0; c < nC; c++ {
		if recvs[c] > minSends[c] {
			for t := 0; t < nT; t++ {
				if hasRecv[t][c] {
					st.CountFlagged[t] = true
				}
			}
		}
		surplus := maxSends[c] - recvs[c]
		if surplus > sc.Caps[c] {
			for t := 0; t < nT; t++ {
				if hasEffSend[t][c] {
					st.CountFlagged[t] = true
				}
			}
		}
	}

	// Wait edges (self-edges included: a task feeding only itself can park
	// on its own channel forever).  A receive always waits on the channel's
	// effective senders; a send waits on the channel's receivers when it can
	// block at all — any rendezvous send, or a buffered send on a channel
	// whose possible supply (dups included) can overrun the capacity.
	edge := make([][]bool, nT)
	for t := range edge {
		edge[t] = make([]bool, nT)
	}
	for t := 0; t < nT; t++ {
		for c := 0; c < nC; c++ {
			if hasRecv[t][c] {
				for u := 0; u < nT; u++ {
					if hasEffSend[u][c] {
						edge[t][u] = true
					}
				}
			}
			if hasEffSend[t][c] && maxSends[c] > sc.Caps[c] {
				for u := 0; u < nT; u++ {
					if hasRecv[u][c] {
						edge[t][u] = true
					}
				}
			}
		}
	}

	// reach[t][u]: u is reachable from t over >= 1 edge (Floyd-Warshall;
	// task counts are single digits).
	reach := make([][]bool, nT)
	for t := range reach {
		reach[t] = append([]bool(nil), edge[t]...)
	}
	for k := 0; k < nT; k++ {
		for i := 0; i < nT; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < nT; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	for t := 0; t < nT; t++ {
		st.Cyclic[t] = reach[t][t]
	}

	// Flag = seed sets plus anything that can reach a seed along wait edges.
	for t := 0; t < nT; t++ {
		st.Flagged[t] = st.CountFlagged[t] || st.Cyclic[t]
		for u := 0; u < nT && !st.Flagged[t]; u++ {
			if reach[t][u] && (st.CountFlagged[u] || st.Cyclic[u]) {
				st.Flagged[t] = true
			}
		}
	}
	return st
}

// IPCExecResult is one executed run's fixed-size summary.
type IPCExecResult struct {
	Outcome Outcome // Completed, Wedged or FuseExceeded (never Deadlocked)
	Rounds  int
	// Core lists the tasks blocked at quiescence — irreducibly stuck, since
	// the executor is deterministic and nothing can ever step again.
	Core []int
	// Dropped counts send ops lost in transit.
	Dropped int
	// Delayed counts messages that spent at least one round in flight;
	// Duplicated counts duplicate copies that actually landed (a dup on a
	// full buffer is lost silently).
	Delayed    int
	Duplicated int
	// MismatchAt describes the first containment violation ("" = none): a
	// core task the static derivation did not flag.
	MismatchAt string
}

// ExecIPC runs a scenario round-robin to completion or quiescence and checks
// the core-containment invariant against st.
func ExecIPC(sc *IPCScenario, st *IPCStatic) IPCExecResult {
	nT := sc.Cfg.Tasks
	// Two counters per buffered channel split occupancy from visibility:
	// fill is the slots reserved (a send blocks on it, a delayed or
	// duplicated message holds its slot from the moment the send completes)
	// and avail is the messages receivers can actually take (incremented
	// when the message arrives, op.Delay rounds after the send).
	fill := make([]int, sc.Cfg.Channels)
	avail := make([]int, sc.Cfg.Channels)
	pending := map[int][]int{} // arrival round -> channels, in send order
	inFlight := 0
	pc := make([]int, nT)
	done := make([]bool, nT)
	res := IPCExecResult{}

	running := nT
	round := 0
	for running > 0 && round < sc.Cfg.Fuse {
		round++
		progress := false
		if chs, ok := pending[round]; ok {
			for _, c := range chs {
				avail[c]++
			}
			inFlight -= len(chs)
			delete(pending, round)
			progress = true
		}
		deliver := func(c, delay int) {
			if delay <= 0 {
				avail[c]++
				return
			}
			res.Delayed++
			pending[round+delay] = append(pending[round+delay], c)
			inFlight++
		}
		for t := 0; t < nT; t++ {
			if done[t] {
				continue
			}
			if pc[t] >= len(sc.Ops[t]) {
				done[t] = true
				running--
				progress = true
				continue
			}
			op := sc.Ops[t][pc[t]]
			switch {
			case op.Send && op.Dropped:
				// Lost in transit: the sender proceeds, nothing arrives.
				res.Dropped++
				pc[t]++
				progress = true
			case op.Send && sc.Caps[op.Ch] == 0:
				// Rendezvous: pair with the lowest-index task parked at a
				// receive on this channel; both advance.
				for u := 0; u < nT; u++ {
					if u == t || done[u] || pc[u] >= len(sc.Ops[u]) {
						continue
					}
					if o := sc.Ops[u][pc[u]]; !o.Send && o.Ch == op.Ch {
						pc[t]++
						pc[u]++
						progress = true
						break
					}
				}
			case op.Send:
				if fill[op.Ch] < sc.Caps[op.Ch] {
					fill[op.Ch]++
					deliver(op.Ch, op.Delay)
					if op.Dup && fill[op.Ch] < sc.Caps[op.Ch] {
						// The duplicate needs its own slot; on a full buffer
						// it is lost, which is why the static derivation
						// counts dups only on the supply maximum.
						fill[op.Ch]++
						res.Duplicated++
						deliver(op.Ch, op.Delay)
					}
					pc[t]++
					progress = true
				}
			default: // receive
				if avail[op.Ch] > 0 {
					avail[op.Ch]--
					fill[op.Ch]--
					pc[t]++
					progress = true
				}
			}
		}
		if !progress && inFlight == 0 {
			break
		}
	}

	res.Rounds = round
	for t := 0; t < nT; t++ {
		if !done[t] && pc[t] < len(sc.Ops[t]) {
			res.Core = append(res.Core, t)
		}
	}
	switch {
	case len(res.Core) == 0:
		res.Outcome = Completed
	case round >= sc.Cfg.Fuse:
		res.Outcome = FuseExceeded
	default:
		res.Outcome = Wedged
	}
	for _, t := range res.Core {
		if !st.Flagged[t] {
			res.MismatchAt = fmt.Sprintf(
				"seed %d: task p%d is in the runtime IPC core but not statically flagged", sc.Seed, t)
			break
		}
	}
	return res
}

// IPCPoint is one parameter point of an IPC sweep.
type IPCPoint struct {
	Label string
	Gen   IPCGenConfig
}

// IPCSweep configures one IPC fuzz campaign.  Point p sweeps seeds
// BaseSeed+p*Seeds .. BaseSeed+(p+1)*Seeds-1.
type IPCSweep struct {
	Points   []IPCPoint
	Seeds    int
	BaseSeed uint64
	// ChunkSize is the streaming-aggregation unit (seeds per campaign job).
	// 0 defaults to 1024.
	ChunkSize int
}

// IPCAgg is the streaming accumulator for one chunk (and, merged, for one
// point): counters only, no per-seed state.
type IPCAgg struct {
	Seeds        int
	Completed    int
	Wedged       int
	FuseExceeded int

	FlaggedRuns int // runs with a non-empty static flag set
	CoreSum     int // stuck tasks across wedged runs
	FlagSum     int // statically flagged tasks across all runs
	DroppedSum  int
	DelayedSum  int
	DupSum      int
	RoundsSum   int

	Violations     int
	FirstViolation string
}

func (a *IPCAgg) fold(st *IPCStatic, res IPCExecResult) {
	a.Seeds++
	//deltalint:partial the IPC executor quiesces or trips the fuse; it never emits Deadlocked (that outcome belongs to the lock-scenario executor)
	switch res.Outcome {
	case Completed:
		a.Completed++
	case Wedged:
		a.Wedged++
	case FuseExceeded:
		a.FuseExceeded++
	}
	if fc := st.FlagCount(); fc > 0 {
		a.FlaggedRuns++
		a.FlagSum += fc
	}
	a.CoreSum += len(res.Core)
	a.DroppedSum += res.Dropped
	a.DelayedSum += res.Delayed
	a.DupSum += res.Duplicated
	a.RoundsSum += res.Rounds
	if res.MismatchAt != "" {
		a.Violations++
		if a.FirstViolation == "" {
			a.FirstViolation = res.MismatchAt
		}
	}
}

func (a *IPCAgg) merge(b *IPCAgg) {
	a.Seeds += b.Seeds
	a.Completed += b.Completed
	a.Wedged += b.Wedged
	a.FuseExceeded += b.FuseExceeded
	a.FlaggedRuns += b.FlaggedRuns
	a.CoreSum += b.CoreSum
	a.FlagSum += b.FlagSum
	a.DroppedSum += b.DroppedSum
	a.DelayedSum += b.DelayedSum
	a.DupSum += b.DupSum
	a.RoundsSum += b.RoundsSum
	a.Violations += b.Violations
	if a.FirstViolation == "" {
		a.FirstViolation = b.FirstViolation
	}
}

// IPCReport is the machine-readable IPC sweep output (structs and slices
// only, so marshaled bytes are worker-count independent).
type IPCReport struct {
	Config IPCReportConfig  `json:"config"`
	Points []IPCPointReport `json:"points"`
}

// IPCReportConfig echoes the sweep-level knobs.
type IPCReportConfig struct {
	SeedsPerPoint int    `json:"seeds_per_point"`
	BaseSeed      uint64 `json:"base_seed"`
	ChunkSize     int    `json:"chunk_size"`
}

// IPCPointReport is one parameter point's aggregate.
type IPCPointReport struct {
	Label string       `json:"label"`
	Gen   IPCGenConfig `json:"gen"`
	Seeds int          `json:"seeds"`

	Completed    int `json:"completed"`
	Wedged       int `json:"wedged"`
	FuseExceeded int `json:"fuse_exceeded"`

	// WedgeProbability vs StaticFlagProbability: static ⊇ runtime means the
	// latter bounds the former from above at every point (a wedged run has a
	// non-empty core, and every core task is flagged).
	WedgeProbability      float64 `json:"wedge_probability"`
	FlaggedRuns           int     `json:"flagged_runs"`
	StaticFlagProbability float64 `json:"static_flag_probability"`

	MeanCoreTasks    float64 `json:"mean_core_tasks"`
	MeanFlaggedTasks float64 `json:"mean_flagged_tasks"`
	MeanRounds       float64 `json:"mean_rounds"`
	DroppedSends     int     `json:"dropped_sends"`
	DelayedSends     int     `json:"delayed_sends"`
	DuplicatedSends  int     `json:"duplicated_sends"`

	Violations     int    `json:"violations"`
	FirstViolation string `json:"first_violation,omitempty"`
}

// JSON marshals the report deterministically (indented, struct field
// order).
func (r *IPCReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// RunIPCSweep executes the sweep on a pool of the given width.  Chunk
// boundaries are fixed by config, not worker count, and chunk accumulators
// merge per point in input order, so a parallel sweep is byte-identical to
// a sequential one.  A non-nil error means the core-containment invariant
// broke; the report is returned alongside so the witness is visible.
func RunIPCSweep(sw IPCSweep, workers int) (*IPCReport, error) {
	if len(sw.Points) == 0 {
		return nil, fmt.Errorf("fuzz: ipc sweep has no parameter points")
	}
	if sw.Seeds <= 0 {
		return nil, fmt.Errorf("fuzz: ipc sweep needs at least one seed per point")
	}
	for _, p := range sw.Points {
		if err := p.Gen.validate(); err != nil {
			return nil, fmt.Errorf("point %q: %w", p.Label, err)
		}
	}
	chunk := sw.ChunkSize
	if chunk <= 0 {
		chunk = 1024
	}

	type job struct {
		point  int
		seedLo uint64
		count  int
	}
	var jobs []job
	perPoint := make([][]int, len(sw.Points))
	for p := range sw.Points {
		base := sw.BaseSeed + uint64(p)*uint64(sw.Seeds)
		for lo := 0; lo < sw.Seeds; lo += chunk {
			n := sw.Seeds - lo
			if n > chunk {
				n = chunk
			}
			perPoint[p] = append(perPoint[p], len(jobs))
			jobs = append(jobs, job{point: p, seedLo: base + uint64(lo), count: n})
		}
	}

	aggs := make([]IPCAgg, len(jobs))
	err := campaign.Run(len(jobs), workers, func(j int) error {
		jb := jobs[j]
		agg := &aggs[j]
		gen := sw.Points[jb.point].Gen
		for k := 0; k < jb.count; k++ {
			sc, err := GenerateIPC(jb.seedLo+uint64(k), gen)
			if err != nil {
				return err
			}
			st := DeriveIPC(sc)
			agg.fold(st, ExecIPC(sc, st))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &IPCReport{Config: IPCReportConfig{
		SeedsPerPoint: sw.Seeds, BaseSeed: sw.BaseSeed, ChunkSize: chunk,
	}}
	totalViolations := 0
	witness := ""
	for p := range sw.Points {
		merged := IPCAgg{}
		for _, j := range perPoint[p] {
			merged.merge(&aggs[j])
		}
		rep.Points = append(rep.Points, ipcPointReport(sw.Points[p], &merged))
		totalViolations += merged.Violations
		if witness == "" {
			witness = merged.FirstViolation
		}
	}
	if totalViolations > 0 {
		return rep, fmt.Errorf("fuzz: ipc: %d core-containment violation(s); first: %s",
			totalViolations, witness)
	}
	return rep, nil
}

func ipcPointReport(p IPCPoint, a *IPCAgg) IPCPointReport {
	pr := IPCPointReport{
		Label:           p.Label,
		Gen:             p.Gen,
		Seeds:           a.Seeds,
		Completed:       a.Completed,
		Wedged:          a.Wedged,
		FuseExceeded:    a.FuseExceeded,
		FlaggedRuns:     a.FlaggedRuns,
		DroppedSends:    a.DroppedSum,
		DelayedSends:    a.DelayedSum,
		DuplicatedSends: a.DupSum,
		Violations:      a.Violations,
		FirstViolation:  a.FirstViolation,
	}
	if a.Seeds > 0 {
		n := float64(a.Seeds)
		pr.WedgeProbability = float64(a.Wedged+a.FuseExceeded) / n
		pr.StaticFlagProbability = float64(a.FlaggedRuns) / n
		pr.MeanCoreTasks = float64(a.CoreSum) / n
		pr.MeanFlaggedTasks = float64(a.FlagSum) / n
		pr.MeanRounds = float64(a.RoundsSum) / n
	}
	return pr
}

// DefaultIPCSweep is the stock message-loss curve: the drop probability
// swept upward over a mixed buffered/rendezvous topology, so the wedge
// probability climbs while the static bound stays above it.
func DefaultIPCSweep(seedsPerPoint int, baseSeed uint64) IPCSweep {
	drops := []float64{0, 0.05, 0.1, 0.2, 0.3}
	sw := IPCSweep{Seeds: seedsPerPoint, BaseSeed: baseSeed}
	for _, d := range drops {
		gen := DefaultIPCGenConfig()
		gen.PDrop = d
		sw.Points = append(sw.Points, IPCPoint{
			Label: fmt.Sprintf("drop=%.2f", d),
			Gen:   gen,
		})
	}
	return sw
}

// FaultIPCSweep layers the transit faults over the stock topology: delay
// alone (reordering pressure without count changes), duplication alone
// (supply surplus pushing senders toward overflow), and all three faults
// combined.  The containment invariant must hold across the whole overlay.
func FaultIPCSweep(seedsPerPoint int, baseSeed uint64) IPCSweep {
	sw := IPCSweep{Seeds: seedsPerPoint, BaseSeed: baseSeed}
	delay := DefaultIPCGenConfig()
	delay.PDelay, delay.MaxDelay = 0.3, 4
	dup := DefaultIPCGenConfig()
	dup.PDup = 0.25
	all := DefaultIPCGenConfig()
	all.PDelay, all.MaxDelay, all.PDup = 0.2, 3, 0.2
	sw.Points = append(sw.Points,
		IPCPoint{Label: "delay=0.30", Gen: delay},
		IPCPoint{Label: "dup=0.25", Gen: dup},
		IPCPoint{Label: "drop+delay+dup", Gen: all},
	)
	return sw
}
