// Package fuzz is the generative scenario engine behind `deltasim -fuzz`:
// a seeded, fully deterministic random workload generator whose output is
// swept through the parallel campaign engine at 10⁵+ seeds per sweep.
//
// A generated scenario is a set of tasks, each with a lock-acquisition
// program — a properly nested sequence of acquire/release ops over shared
// single-unit resources — plus a fault overlay (lost releases, task
// crashes).  Scenarios are executed by an abstract round-robin scheduler
// over the paper's RAG (internal/rag), with PDDA detection scans standing
// in for the hardware DDU, so the sweep reproduces the deadlock-probability
// phase transitions Barbosa's *Combinatorics of Resource Sharing* predicts
// as contention rises.
//
// Every run is checked against standing invariants rather than one-off unit
// tests (the static ⊇ runtime contract as a fuzz invariant):
//
//   - the RAG matrix satisfies rag.Matrix.Validate at every scan,
//   - pdda.Detect agrees with the rag.Graph.HasCycle oracle on sampled
//     seeds,
//   - a runtime deadlock implies a cycle in the scenario's statically
//     derived lock-order graph (lockorder ⊇ DDU),
//   - runtime held-sets are a subset of the statically derived claims
//     (claims ⊇ audit),
//   - a sampled subset of scenarios is emitted as Go source and round-
//     tripped through deltalint's real lockorder/claims passes, which must
//     agree with the direct derivation.
//
// Determinism contract: a (seed, GenConfig) pair fully determines the
// scenario, its execution, and therefore the sweep report; aggregation is
// streaming (per-parameter-point counters and histograms, no per-seed
// retention) and chunked so a parallel sweep is byte-identical to a
// sequential one.
package fuzz

import (
	"fmt"
	"strings"

	"deltartos/internal/det"
)

// GenConfig parameterizes the scenario generator at one sweep point.
type GenConfig struct {
	// Tasks and Resources size the system (processes n × resources m).
	Tasks     int `json:"tasks"`
	Resources int `json:"resources"`
	// Ops is the number of acquires each task performs.
	Ops int `json:"ops"`
	// MaxDepth bounds the lock nesting depth (held locks per task).
	MaxDepth int `json:"max_depth"`
	// PAcquire is the probability of nesting another acquire instead of
	// releasing the innermost held lock — the request-rate shaper (hold
	// times follow from nesting, so this is the hold/request distribution
	// knob).
	PAcquire float64 `json:"p_acquire"`
	// Hotspot skews resource selection toward low ids: a pick is the
	// minimum of 1+Hotspot uniform draws, concentrating contention on a
	// few hot resources.  0 = uniform.
	Hotspot int `json:"hotspot"`
	// PLostRelease drops a release op from the program (the task holds the
	// resource until it terminates) — the generative analogue of the fault
	// injector's lost G_release.
	PLostRelease float64 `json:"p_lost_release"`
	// PCrash halts a task at a random point of its program, holding
	// whatever it holds — the analogue of a task crash fault.
	PCrash float64 `json:"p_crash"`
	// DetectEvery is the PDDA detection-scan period in scheduler rounds
	// (the DDU's polling cadence in this abstract time base).
	DetectEvery int `json:"detect_every"`
	// Fuse bounds the scheduler rounds of one run.
	Fuse int `json:"fuse"`
}

// DefaultGenConfig is the base parameter point of the default sweep.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Tasks:        12,
		Resources:    16,
		Ops:          6,
		MaxDepth:     4,
		PAcquire:     0.55,
		Hotspot:      0,
		PLostRelease: 0.02,
		PCrash:       0.02,
		DetectEvery:  4,
		Fuse:         100_000,
	}
}

// Contention is the sweep's x-axis: the task-to-resource ratio (Barbosa's
// load factor; deadlock probability undergoes its phase transition as this
// rises).
func (c GenConfig) Contention() float64 {
	if c.Resources == 0 {
		return 0
	}
	return float64(c.Tasks) / float64(c.Resources)
}

func (c GenConfig) validate() error {
	switch {
	case c.Tasks < 1:
		return fmt.Errorf("fuzz: need at least one task")
	case c.Resources < 1:
		return fmt.Errorf("fuzz: need at least one resource")
	case c.Ops < 1:
		return fmt.Errorf("fuzz: need at least one op per task")
	case c.MaxDepth < 1:
		return fmt.Errorf("fuzz: need nesting depth >= 1")
	case c.DetectEvery < 1:
		return fmt.Errorf("fuzz: need a detection-scan period >= 1")
	case c.Fuse < 1:
		return fmt.Errorf("fuzz: need a positive round fuse")
	}
	return nil
}

// Op is one instruction of a task program.
type Op struct {
	Acquire bool // false = release
	Res     int  // resource id
}

// TaskProg is one task's generated program.
type TaskProg struct {
	Name string
	Ops  []Op
	// CrashAt halts the task before executing Ops[CrashAt]; -1 = no crash.
	CrashAt int
	// Lost counts releases dropped from this program.
	Lost int
}

// Scenario is one generated workload.
type Scenario struct {
	Seed  uint64
	Cfg   GenConfig
	Progs []TaskProg
}

// Generate builds the scenario for one (seed, config) pair.  Equal inputs
// yield byte-identical scenarios, forever: all randomness flows through one
// explicitly seeded splitmix64 stream drawn in a fixed order.
func Generate(seed uint64, cfg GenConfig) (*Scenario, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := det.New(seed)
	sc := &Scenario{Seed: seed, Cfg: cfg, Progs: make([]TaskProg, cfg.Tasks)}
	held := make([]bool, cfg.Resources)
	candidates := make([]int, 0, cfg.Resources)
	for t := 0; t < cfg.Tasks; t++ {
		prog := TaskProg{Name: fmt.Sprintf("p%d", t), CrashAt: -1}
		for i := range held {
			held[i] = false
		}
		var stack []int
		acquires := 0
		heldCount := 0 // includes lost-release locks, which stay held off-stack
		for acquires < cfg.Ops || len(stack) > 0 {
			candidates = candidates[:0]
			if acquires < cfg.Ops && heldCount < cfg.MaxDepth {
				for r := 0; r < cfg.Resources; r++ {
					if !held[r] {
						candidates = append(candidates, r)
					}
				}
			}
			canAcquire := len(candidates) > 0
			canRelease := len(stack) > 0
			if canAcquire && (!canRelease || rng.Float64() < cfg.PAcquire) {
				idx := pick(rng, len(candidates), cfg.Hotspot)
				r := candidates[idx]
				prog.Ops = append(prog.Ops, Op{Acquire: true, Res: r})
				held[r] = true
				stack = append(stack, r)
				acquires++
				heldCount++
				continue
			}
			if !canRelease {
				// Nothing acquirable and nothing held: the op budget is
				// unreachable (every resource held), stop the program here.
				break
			}
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rng.Float64() < cfg.PLostRelease {
				// Lost release: the op is absent from the program, the
				// resource stays held until the task terminates.
				prog.Lost++
				continue
			}
			prog.Ops = append(prog.Ops, Op{Acquire: false, Res: r})
			held[r] = false
			heldCount--
		}
		if rng.Float64() < cfg.PCrash && len(prog.Ops) > 0 {
			prog.CrashAt = rng.Intn(len(prog.Ops))
		}
		sc.Progs[t] = prog
	}
	return sc, nil
}

// pick selects an index in [0, n) with Hotspot-fold skew toward 0.
func pick(rng *det.RNG, n, hotspot int) int {
	idx := rng.Intn(n)
	for k := 0; k < hotspot; k++ {
		if j := rng.Intn(n); j < idx {
			idx = j
		}
	}
	return idx
}

// String renders the scenario compactly for diagnostics: one line per task,
// + = acquire, - = release.
func (sc *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %d tasks x %d resources\n", sc.Seed, sc.Cfg.Tasks, sc.Cfg.Resources)
	for _, p := range sc.Progs {
		fmt.Fprintf(&b, "  %-4s", p.Name)
		for i, op := range p.Ops {
			if i == p.CrashAt {
				b.WriteString(" !crash")
				break
			}
			sign := "-"
			if op.Acquire {
				sign = "+"
			}
			fmt.Fprintf(&b, " %sq%d", sign, op.Res)
		}
		if p.Lost > 0 {
			fmt.Fprintf(&b, " (%d lost release)", p.Lost)
		}
		b.WriteString("\n")
	}
	return b.String()
}
