// Static derivation: the same facts deltalint's lockorder and claims
// passes infer from Go source, computed directly from a generated
// scenario's task programs.  The derivation is deliberately independent of
// both the executor and the source-level passes, so the three can
// cross-check each other (lint.go round-trips sampled scenarios through
// the real passes and compares against this).

package fuzz

// Static is the scenario's compile-time view.
type Static struct {
	// order[a][b] records the lock-order edge a→b: some task acquires b
	// while holding a.
	order [][]bool
	// claims[t] is task t's maximal claim set: every resource its program
	// may acquire, ascending (crash points do not shrink it — static
	// analysis over-approximates).
	claims [][]int
	// hasCycle reports a cycle in the lock-order graph — the static
	// deadlock prediction.  The standing fuzz invariant is runtime
	// deadlock ⇒ hasCycle (static ⊇ runtime).
	hasCycle bool
}

// Derive computes the static view of a scenario.
func Derive(sc *Scenario) *Static {
	m := sc.Cfg.Resources
	st := &Static{order: make([][]bool, m), claims: make([][]int, len(sc.Progs))}
	for a := range st.order {
		st.order[a] = make([]bool, m)
	}
	held := make([]bool, m)
	touched := make([]bool, m)
	for t, prog := range sc.Progs {
		for r := range held {
			held[r] = false
			touched[r] = false
		}
		// The static walk follows the program linearly — exactly the
		// held-set dataflow the lockorder pass runs over task closures.
		for _, op := range prog.Ops {
			if op.Acquire {
				for a := 0; a < m; a++ {
					if held[a] {
						st.order[a][op.Res] = true
					}
				}
				held[op.Res] = true
				touched[op.Res] = true
			} else {
				held[op.Res] = false
			}
		}
		for r := 0; r < m; r++ {
			if touched[r] {
				st.claims[t] = append(st.claims[t], r)
			}
		}
	}
	st.hasCycle = orderCycle(st.order)
	return st
}

// HasCycle reports whether the lock-order graph predicts a deadlock.
func (st *Static) HasCycle() bool { return st.hasCycle }

// Claims returns task t's maximal claim set, ascending.
func (st *Static) Claims(t int) []int { return st.claims[t] }

// Edges counts the lock-order edges.
func (st *Static) Edges() int {
	n := 0
	for _, row := range st.order {
		for _, e := range row {
			if e {
				n++
			}
		}
	}
	return n
}

// orderCycle is an iterative three-color DFS over the lock-order graph.
func orderCycle(order [][]bool) bool {
	m := len(order)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, m)
	type frame struct{ v, next int }
	for start := 0; start < m; start++ {
		if color[start] != white {
			continue
		}
		stack := []frame{{start, 0}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for w := f.next; w < m; w++ {
				if !order[f.v][w] {
					continue
				}
				f.next = w + 1
				switch color[w] {
				case gray:
					return true
				case white:
					color[w] = gray
					stack = append(stack, frame{w, 0})
				default: // black: already explored
					continue
				}
				advanced = true
				break
			}
			if !advanced {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false
}
