// The campaign-scale sweep: a grid of generator parameter points, each
// swept over a contiguous seed range, sharded into fixed-size chunks run on
// the campaign worker pool.  Aggregation is streaming — every chunk folds
// its seeds into one fixed-size accumulator as it goes, chunk accumulators
// merge per point in input order — so memory is bounded by the chunk count,
// never the seed count, and a parallel sweep is byte-identical to a
// sequential one (chunk boundaries are fixed by config, not worker count).

package fuzz

import (
	"fmt"

	"deltartos/internal/campaign"
)

// latBuckets is the detection-latency histogram size: bucket 0 holds
// latency 0, bucket k holds latencies in [2^(k-1), 2^k).
const latBuckets = 18

// cycleLenMax is the last tracked witness-cycle length; longer cycles fold
// into the final bucket.
const cycleLenMax = 16

// Point is one parameter point of a sweep.
type Point struct {
	Label string
	Gen   GenConfig
}

// Sweep configures one fuzz campaign.
type Sweep struct {
	// Points is the parameter grid (the contention axis of the default
	// sweep).
	Points []Point
	// Seeds is the seed count per point; point p sweeps
	// BaseSeed+p*Seeds .. BaseSeed+(p+1)*Seeds-1, so points never share a
	// seed stream.
	Seeds    int
	BaseSeed uint64
	// OracleEvery samples every k-th seed of a point for the deep per-scan
	// PDDA-vs-HasCycle/Validate cross-check (1 = every seed, 0 = terminal
	// checks only).
	OracleEvery int
	// LintSample round-trips the first k seeds of every point through the
	// deltalint lockorder/claims passes.
	LintSample int
	// ChunkSize is the streaming-aggregation unit (seeds per campaign
	// job).  0 defaults to 1024.
	ChunkSize int
}

// Agg is the streaming accumulator for one chunk (and, merged, for one
// point).  Everything is a counter or fixed-size histogram: no per-seed
// state survives the seed that produced it.
type Agg struct {
	Seeds    int
	Outcomes [OutcomeCount]int

	StaticCycles int // scenarios whose lock-order graph predicts deadlock
	BlockedSum   int
	RoundsSum    int

	LatCount   int
	LatSum     int
	LatHist    [latBuckets]int
	CycleLens  [cycleLenMax + 1]int
	OpsSum     int
	LostSum    int
	CrashedSum int

	OracleChecked    int
	LintChecked      int
	BankerChecked    int // seeds replayed through both Banker engines
	BankerDecisions  int // grant/refuse decisions compared across engines
	Mismatches       int
	FirstMismatch    string
	InfraErr         string // infrastructure failure (lint temp dir etc.)
	DeadlockDetected int    // == Outcomes[Deadlocked]; kept for clarity in merge tests
}

// fold streams one executed seed into the accumulator.
func (a *Agg) fold(sc *Scenario, st *Static, res ExecResult, deepOracle bool) {
	a.Seeds++
	a.Outcomes[res.Outcome]++
	if res.Outcome == Deadlocked {
		a.DeadlockDetected++
	}
	if st.HasCycle() {
		a.StaticCycles++
	}
	a.BlockedSum += res.Blocked
	a.RoundsSum += res.Rounds
	for _, p := range sc.Progs {
		a.OpsSum += len(p.Ops)
		a.LostSum += p.Lost
		if p.CrashAt >= 0 {
			a.CrashedSum++
		}
	}
	if deepOracle {
		a.OracleChecked++
	}
	if res.DetectRound >= 0 && res.FormRound >= 0 {
		lat := res.DetectRound - res.FormRound
		a.LatCount++
		a.LatSum += lat
		a.LatHist[latBucket(lat)]++
		cl := res.CycleLen
		if cl > cycleLenMax {
			cl = cycleLenMax
		}
		if cl > 0 {
			a.CycleLens[cl]++
		}
	}
	if res.MismatchAt != "" {
		a.Mismatches++
		if a.FirstMismatch == "" {
			a.FirstMismatch = res.MismatchAt
		}
	}
}

// merge folds b (a later chunk of the same point) into a.
func (a *Agg) merge(b *Agg) {
	a.Seeds += b.Seeds
	for i := range a.Outcomes {
		a.Outcomes[i] += b.Outcomes[i]
	}
	a.StaticCycles += b.StaticCycles
	a.BlockedSum += b.BlockedSum
	a.RoundsSum += b.RoundsSum
	a.LatCount += b.LatCount
	a.LatSum += b.LatSum
	for i := range a.LatHist {
		a.LatHist[i] += b.LatHist[i]
	}
	for i := range a.CycleLens {
		a.CycleLens[i] += b.CycleLens[i]
	}
	a.OpsSum += b.OpsSum
	a.LostSum += b.LostSum
	a.CrashedSum += b.CrashedSum
	a.OracleChecked += b.OracleChecked
	a.LintChecked += b.LintChecked
	a.BankerChecked += b.BankerChecked
	a.BankerDecisions += b.BankerDecisions
	a.Mismatches += b.Mismatches
	if a.FirstMismatch == "" {
		a.FirstMismatch = b.FirstMismatch
	}
	if a.InfraErr == "" {
		a.InfraErr = b.InfraErr
	}
	a.DeadlockDetected += b.DeadlockDetected
}

func latBucket(lat int) int {
	b := 0
	for lat > 0 {
		b++
		lat >>= 1
	}
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

// chunkJob is one unit of parallel work: a contiguous seed range of one
// point.
type chunkJob struct {
	point    int
	seedLo   uint64 // absolute first seed
	indexLo  int    // seed index within the point (for sampling cadence)
	count    int
	lintUpTo int // point-local seed indices below this round-trip deltalint
}

// RunSweep executes the sweep on a pool of the given width and returns the
// per-point report.  A non-nil error means an invariant broke (PDDA vs
// oracle, static ⊇ runtime, lint round-trip) or lint infrastructure
// failed; the report is returned alongside so the witness is visible.
func RunSweep(sw Sweep, workers int) (*Report, error) {
	if len(sw.Points) == 0 {
		return nil, fmt.Errorf("fuzz: sweep has no parameter points")
	}
	if sw.Seeds <= 0 {
		return nil, fmt.Errorf("fuzz: sweep needs at least one seed per point")
	}
	for _, p := range sw.Points {
		if err := p.Gen.validate(); err != nil {
			return nil, fmt.Errorf("point %q: %w", p.Label, err)
		}
	}
	chunk := sw.ChunkSize
	if chunk <= 0 {
		chunk = 1024
	}

	var jobs []chunkJob
	perPoint := make([][]int, len(sw.Points)) // job indices per point, in order
	for p := range sw.Points {
		base := sw.BaseSeed + uint64(p)*uint64(sw.Seeds)
		for lo := 0; lo < sw.Seeds; lo += chunk {
			n := sw.Seeds - lo
			if n > chunk {
				n = chunk
			}
			perPoint[p] = append(perPoint[p], len(jobs))
			jobs = append(jobs, chunkJob{
				point:    p,
				seedLo:   base + uint64(lo),
				indexLo:  lo,
				count:    n,
				lintUpTo: sw.LintSample,
			})
		}
	}

	aggs := make([]Agg, len(jobs))
	err := campaign.Run(len(jobs), workers, func(j int) error {
		job := jobs[j]
		agg := &aggs[j]
		gen := sw.Points[job.point].Gen
		var es ExecScratch // detection buffers shared by the chunk's seeds
		for k := 0; k < job.count; k++ {
			seed := job.seedLo + uint64(k)
			idx := job.indexLo + k
			sc, err := Generate(seed, gen)
			if err != nil {
				return err
			}
			st := Derive(sc)
			deep := sw.OracleEvery > 0 && idx%sw.OracleEvery == 0
			res := ExecWith(&es, sc, st, deep)
			agg.fold(sc, st, res, deep)
			// The Banker differential: replay the seed's traffic through the
			// bitset Banker and the per-cell RefBanker, comparing every
			// grant/refuse decision.
			bd := BankerDiff(sc, st)
			agg.BankerChecked++
			agg.BankerDecisions += bd.Decisions
			if bd.Mismatch != "" {
				agg.Mismatches++
				if agg.FirstMismatch == "" {
					agg.FirstMismatch = bd.Mismatch
				}
			}
			if idx < job.lintUpTo {
				mismatch, err := LintCheck(sc, st)
				if err != nil {
					if agg.InfraErr == "" {
						agg.InfraErr = err.Error()
					}
					continue
				}
				agg.LintChecked++
				if mismatch != "" {
					agg.Mismatches++
					if agg.FirstMismatch == "" {
						agg.FirstMismatch = mismatch
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := NewReport(sw)
	totalMismatch := 0
	witness := ""
	infra := ""
	for p := range sw.Points {
		merged := Agg{}
		for _, j := range perPoint[p] {
			merged.merge(&aggs[j])
		}
		rep.Points = append(rep.Points, pointReport(sw.Points[p], &merged))
		totalMismatch += merged.Mismatches
		if witness == "" {
			witness = merged.FirstMismatch
		}
		if infra == "" {
			infra = merged.InfraErr
		}
	}
	if infra != "" {
		return rep, fmt.Errorf("fuzz: lint round-trip infrastructure: %s", infra)
	}
	if totalMismatch > 0 {
		return rep, fmt.Errorf("fuzz: %d invariant violation(s); first: %s", totalMismatch, witness)
	}
	return rep, nil
}

// DefaultSweep is the stock contention curve: task count fixed, resource
// count swept downward so the task-to-resource ratio rises through the
// phase-transition region.  The axis is tuned empirically so the deadlock
// probability runs the full S-curve, ~0.02 at m=256 to ~0.98 at m=8.
func DefaultSweep(seedsPerPoint int, baseSeed uint64) Sweep {
	resources := []int{256, 128, 96, 64, 48, 32, 16, 8}
	sw := Sweep{
		Seeds:       seedsPerPoint,
		BaseSeed:    baseSeed,
		OracleEvery: 16,
		LintSample:  2,
	}
	for _, m := range resources {
		gen := DefaultGenConfig()
		gen.Resources = m
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("m=%d", m),
			Gen:   gen,
		})
	}
	return sw
}
