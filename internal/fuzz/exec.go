// The abstract executor: a deterministic round-robin scheduler running a
// scenario's task programs against the paper's RAG, with periodic PDDA
// detection scans standing in for the hardware DDU.  Time is measured in
// scheduler rounds (one attempted op per runnable task per round) — the
// abstract analogue of bus cycles, good enough for detection-latency
// distributions and phase-transition curves at 10⁵+ seeds.

package fuzz

import (
	"fmt"

	"deltartos/internal/pdda"
	"deltartos/internal/rag"
)

// Outcome classifies one executed run.
type Outcome uint8

const (
	// Completed: every task ran to the end of its program (or its crash
	// point) and every resource was released or is held by a terminated
	// task without blocking anyone.
	Completed Outcome = iota
	// Deadlocked: a PDDA detection scan reported deadlock.
	Deadlocked
	// Wedged: execution quiesced with tasks blocked but no RAG cycle —
	// starvation on a resource held forever (lost release, crash).
	Wedged
	// FuseExceeded: the round fuse tripped before a terminal state.
	FuseExceeded

	// OutcomeCount is the dense-enum sentinel.
	OutcomeCount
)

// String names the outcome for tables and reports.
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Deadlocked:
		return "deadlocked"
	case Wedged:
		return "wedged"
	case FuseExceeded:
		return "fuse-exceeded"
	case OutcomeCount:
		return "invalid"
	}
	return "invalid"
}

// ExecResult is one run's streamed-out summary (fixed size, no per-step
// retention).
type ExecResult struct {
	Outcome Outcome
	// Rounds is the scheduler round count at termination.
	Rounds int
	// FormRound is the round the oracle first saw a RAG cycle (-1 = never).
	FormRound int
	// DetectRound is the round the periodic PDDA scan reported deadlock
	// (-1 = never).  DetectRound-FormRound is the detection latency.
	DetectRound int
	// CycleLen is the process count of the witness cycle at formation.
	CycleLen int
	// Blocked counts acquire attempts that blocked at least once.
	Blocked int
	// MismatchAt describes the first invariant violation ("" = none):
	// PDDA-vs-oracle disagreement, matrix validation failure, a detection
	// without formation, or a runtime held-set outside the static claims.
	MismatchAt string
}

// intSliceEq reports element-wise equality, treating nil and empty alike
// only when both are empty.
func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// taskState is the executor's per-task runtime.
type taskState struct {
	pc            int
	blocked       bool // an acquire is outstanding (request edge in the RAG)
	done          bool
	crashed       bool
	everBlock     bool
	blockedRounds int // rounds spent with the acquire outstanding
}

// ExecScratch holds the executor's reusable detection buffers.  One scratch
// serves any number of consecutive Exec runs; the sweep keeps one per chunk
// so the periodic PDDA scans of 10⁶ seeds allocate nothing.
type ExecScratch struct {
	det pdda.Scratch
}

// Exec runs a scenario to a terminal state with a private scratch.
func Exec(sc *Scenario, st *Static, oracleAll bool) ExecResult {
	var es ExecScratch
	return ExecWith(&es, sc, st, oracleAll)
}

// ExecWith runs a scenario to a terminal state.  oracleAll additionally
// checks PDDA against the HasCycle oracle and rag.Matrix.Validate at every
// detection scan (the sampled-seed deep cross-check); the cheap invariants —
// including the standing engine differential, word-parallel verdict versus
// the per-cell reference engine — are checked on every run.
func ExecWith(es *ExecScratch, sc *Scenario, st *Static, oracleAll bool) ExecResult {
	cfg := sc.Cfg
	g := rag.NewGraph(cfg.Resources, cfg.Tasks)
	tasks := make([]taskState, cfg.Tasks)
	res := ExecResult{FormRound: -1, DetectRound: -1}

	mismatch := func(format string, args ...any) {
		if res.MismatchAt == "" {
			res.MismatchAt = fmt.Sprintf("seed %d: ", sc.Seed) + fmt.Sprintf(format, args...)
		}
	}

	// The claims audit: the runtime held-union per task must stay inside
	// the statically derived claim set.  Acquisition order is audited at
	// grant time below.
	claimed := make([][]bool, cfg.Tasks)
	for t := range claimed {
		claimed[t] = make([]bool, cfg.Resources)
		for _, r := range st.Claims(t) {
			claimed[t][r] = true
		}
	}

	running := cfg.Tasks
	round := 0
	for running > 0 && round < cfg.Fuse {
		round++
		progress := false
		for t := range tasks {
			ts := &tasks[t]
			if ts.done || ts.crashed {
				continue
			}
			prog := &sc.Progs[t]
			if ts.pc == prog.CrashAt {
				// The crash fault: halt here, holding everything held.
				// An outstanding request is withdrawn (the task will never
				// consume a grant).
				if ts.blocked {
					g.RemoveRequest(prog.Ops[ts.pc].Res, t)
				}
				ts.crashed = true
				running--
				progress = true
				continue
			}
			if ts.pc >= len(prog.Ops) {
				ts.done = true
				running--
				progress = true
				continue
			}
			op := prog.Ops[ts.pc]
			if op.Acquire {
				holder := g.Holder(op.Res)
				if holder == -1 {
					if err := g.SetGrant(op.Res, t); err != nil {
						mismatch("grant q%d to p%d: %v", op.Res, t, err)
					}
					if !claimed[t][op.Res] {
						mismatch("p%d acquired q%d outside its static claim set", t, op.Res)
					}
					ts.blocked = false
					ts.pc++
					progress = true
				} else {
					if !ts.blocked {
						// First blocking attempt: the request edge appears,
						// the only event that can close a RAG cycle.
						g.AddRequest(op.Res, t)
						ts.blocked = true
						ts.everBlock = true
						res.Blocked++
						if res.FormRound < 0 && g.HasCycle() {
							res.FormRound = round
							res.CycleLen = len(g.Cycle())
						}
					}
					ts.blockedRounds++
				}
			} else {
				if err := g.Release(op.Res, t); err != nil {
					mismatch("release q%d by p%d: %v", op.Res, t, err)
				}
				ts.pc++
				progress = true
			}
		}

		scan := round%cfg.DetectEvery == 0
		if scan && res.DetectRound < 0 {
			deadlock, _ := pdda.DetectGraphInto(&es.det, g)
			if oracleAll {
				if want := g.HasCycle(); deadlock != want {
					mismatch("round %d: PDDA=%v, HasCycle oracle=%v", round, deadlock, want)
				}
				if want := pdda.DetectGraphCells(g); deadlock != want {
					mismatch("round %d: bitset engine=%v, cell engine=%v", round, deadlock, want)
				}
				if err := g.Matrix().Validate(); err != nil {
					mismatch("round %d: %v", round, err)
				}
			}
			if deadlock {
				res.DetectRound = round
				if res.FormRound < 0 {
					mismatch("round %d: PDDA detected a deadlock the oracle never saw form", round)
				}
				break
			}
		}
		if !progress && !g.HasCycle() {
			// Quiescent with no live cycle: starvation, not deadlock.  (A
			// formed cycle can still die here — a blocked member crashing
			// withdraws its request — so the check is on the current graph,
			// not on FormRound.  With a live cycle we keep idling so the
			// periodic scan detects it at its own cadence — that wait is
			// the detection latency.)
			break
		}
	}

	// Classification + terminal cross-check (every run, sampled or not).
	// This is the standing differential invariant: on every seed, the packed
	// word-parallel engines must agree with the per-cell reference engines —
	// identical PDDA verdicts, identical cycle witnesses, identical
	// deadlocked-process sets.
	deadlock, _ := pdda.DetectGraphInto(&es.det, g)
	if want := g.HasCycle(); deadlock != want {
		mismatch("terminal: PDDA=%v, HasCycle oracle=%v", deadlock, want)
	}
	if want := pdda.DetectGraphCells(g); deadlock != want {
		mismatch("terminal: bitset engine=%v, cell engine=%v", deadlock, want)
	}
	if want := g.HasCycleRef(); g.HasCycle() != want {
		mismatch("terminal: HasCycle=%v, per-cell ref=%v", !want, want)
	}
	if got, want := g.Cycle(), g.CycleRef(); !intSliceEq(got, want) {
		mismatch("terminal: cycle witness %v, per-cell ref %v", got, want)
	}
	if got, want := g.DeadlockedProcesses(), g.DeadlockedProcessesRef(); !intSliceEq(got, want) {
		mismatch("terminal: deadlocked set %v, per-cell ref %v", got, want)
	}
	if err := g.Matrix().Validate(); err != nil {
		mismatch("terminal: %v", err)
	}
	res.Rounds = round
	switch {
	case res.DetectRound >= 0:
		res.Outcome = Deadlocked
		if !st.HasCycle() {
			// The standing static ⊇ runtime invariant.
			mismatch("runtime deadlock but the static lock-order graph is acyclic")
		}
	case running == 0:
		res.Outcome = Completed
		if deadlock {
			mismatch("terminal: all tasks done but PDDA still reports deadlock")
		}
		if !st.HasCycle() {
			// The abstract analogue of the blocking pass's worst-case bound:
			// with an acyclic static lock-order graph, a completed run's
			// round-robin scheduler gives every blocked task's chain a
			// progress step each round, so a task can wait at most the other
			// tasks' total step budget (ops + grant/terminate transitions)
			// plus one detection period of idle slack.
			for t := range tasks {
				limit := cfg.DetectEvery
				for o := range tasks {
					if o != t {
						limit += len(sc.Progs[o].Ops) + 2
					}
				}
				if tasks[t].blockedRounds > limit {
					mismatch("p%d blocked %d rounds, exceeding the static blocking bound %d (acyclic lock-order graph)",
						t, tasks[t].blockedRounds, limit)
				}
			}
		}
	case round >= cfg.Fuse:
		res.Outcome = FuseExceeded
	default:
		res.Outcome = Wedged
	}
	return res
}
