// The Banker differential: every fuzz seed's traffic is replayed through
// both Banker engines — the word-parallel bitset Banker and the per-cell
// RefBanker — and every grant/refuse decision is compared.  The replay is a
// deterministic round-robin over the scenario's task programs with claims
// taken from the static derivation, so both engines see byte-identical
// request/release streams.

package fuzz

import (
	"fmt"

	"deltartos/internal/daa"
)

// BankerDiffResult summarizes one seed's replay.
type BankerDiffResult struct {
	// Decisions is the number of grant/refuse decisions compared.
	Decisions int
	// Mismatch describes the first engine divergence ("" = none).
	Mismatch string
}

// BankerDiff replays sc's traffic through the bitset Banker and the
// per-cell RefBanker under st's claim sets and compares every decision.
//
// Replay semantics (identical for both engines, chosen so the stream stays
// well-formed under refusals): an acquire of a resource the task already
// holds is skipped; a refused acquire is dropped (Banker's has no pending
// queue — the later matching release is then skipped too); a crash halts
// the task at its crash point, stranding what it holds; releases of
// resources not held (lost-release doubles, refused acquires) are skipped.
func BankerDiff(sc *Scenario, st *Static) BankerDiffResult {
	cfg := sc.Cfg
	var out BankerDiffResult

	fast, err := daa.NewBanker(cfg.Tasks, cfg.Resources)
	if err != nil {
		out.Mismatch = "banker-diff: " + err.Error()
		return out
	}
	ref, err := daa.NewRefBanker(cfg.Tasks, cfg.Resources)
	if err != nil {
		out.Mismatch = "banker-diff: " + err.Error()
		return out
	}
	for t := 0; t < cfg.Tasks; t++ {
		claims := st.Claims(t)
		if err := fast.DeclareClaim(t, claims...); err != nil {
			out.Mismatch = "banker-diff: " + err.Error()
			return out
		}
		if err := ref.DeclareClaim(t, claims...); err != nil {
			out.Mismatch = "banker-diff: " + err.Error()
			return out
		}
	}

	pc := make([]int, cfg.Tasks)
	held := make([][]bool, cfg.Tasks)
	for t := range held {
		held[t] = make([]bool, cfg.Resources)
	}
	mismatch := func(format string, args ...any) {
		if out.Mismatch == "" {
			out.Mismatch = fmt.Sprintf("seed %d: banker-diff: ", sc.Seed) + fmt.Sprintf(format, args...)
		}
	}

	running := cfg.Tasks
	for running > 0 {
		progress := false
		for t := 0; t < cfg.Tasks; t++ {
			prog := &sc.Progs[t]
			if pc[t] < 0 {
				continue
			}
			if pc[t] == prog.CrashAt || pc[t] >= len(prog.Ops) {
				pc[t] = -1
				running--
				progress = true
				continue
			}
			op := prog.Ops[pc[t]]
			pc[t]++
			progress = true
			if op.Acquire {
				if held[t][op.Res] {
					continue
				}
				fastGrant, fastErr := fast.Request(t, op.Res)
				refGrant, refErr := ref.Request(t, op.Res)
				out.Decisions++
				if (fastErr == nil) != (refErr == nil) {
					mismatch("p%d req q%d: error divergence: bitset=%v ref=%v", t, op.Res, fastErr, refErr)
					return out
				}
				if fastGrant != refGrant {
					mismatch("p%d req q%d: bitset granted=%v ref granted=%v", t, op.Res, fastGrant, refGrant)
					return out
				}
				if fastGrant {
					held[t][op.Res] = true
				}
			} else if held[t][op.Res] {
				if err := fast.Release(t, op.Res); err != nil {
					mismatch("bitset release p%d q%d: %v", t, op.Res, err)
					return out
				}
				if err := ref.Release(t, op.Res); err != nil {
					mismatch("ref release p%d q%d: %v", t, op.Res, err)
					return out
				}
				held[t][op.Res] = false
			}
		}
		if !progress {
			break
		}
	}
	if fast.Refusals != ref.Refusals {
		mismatch("refusal totals diverge: bitset=%d ref=%d", fast.Refusals, ref.Refusals)
	}
	return out
}
