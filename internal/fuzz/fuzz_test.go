package fuzz

import (
	"bytes"
	"encoding/json"
	"testing"

	"deltartos/internal/det"
	"deltartos/internal/pdda"
	"deltartos/internal/rag"
)

// TestGenerateDeterministic: equal (seed, config) pairs yield byte-identical
// scenarios — the contract everything else (replay, parallel sweeps, witness
// reproduction) stands on.
func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := uint64(1); seed <= 50; seed++ {
		a, err := Generate(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a, b)
		}
		if EmitGo(a, Derive(a)) != EmitGo(b, Derive(b)) {
			t.Fatalf("seed %d: emitted Go differs between generations", seed)
		}
	}
}

// TestGeneratorSoundness: every generated program obeys stack discipline —
// acquires only non-held resources within the depth bound, releases only the
// innermost held lock, ids in range — and the fault overlay is consistent
// (Lost matches the locks still held at program end, CrashAt indexes a real
// op).
func TestGeneratorSoundness(t *testing.T) {
	cfgs := []GenConfig{DefaultGenConfig()}
	tight := DefaultGenConfig()
	tight.Resources = 4
	tight.MaxDepth = 3
	tight.Hotspot = 2
	tight.PLostRelease = 0.2
	tight.PCrash = 0.2
	cfgs = append(cfgs, tight)

	for _, cfg := range cfgs {
		for seed := uint64(0); seed < 200; seed++ {
			sc, err := Generate(seed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(sc.Progs) != cfg.Tasks {
				t.Fatalf("seed %d: %d programs, want %d", seed, len(sc.Progs), cfg.Tasks)
			}
			for ti, prog := range sc.Progs {
				held := map[int]bool{}
				var stack []int
				acquires := 0
				for pc, op := range prog.Ops {
					if op.Res < 0 || op.Res >= cfg.Resources {
						t.Fatalf("seed %d task %d op %d: resource %d out of range", seed, ti, pc, op.Res)
					}
					if op.Acquire {
						if held[op.Res] {
							t.Fatalf("seed %d task %d: re-acquires held q%d", seed, ti, op.Res)
						}
						if len(stack) >= cfg.MaxDepth {
							t.Fatalf("seed %d task %d: nesting depth %d exceeds MaxDepth %d",
								seed, ti, len(stack)+1, cfg.MaxDepth)
						}
						held[op.Res] = true
						stack = append(stack, op.Res)
						acquires++
					} else {
						// Releases target held locks; with lost releases the
						// released lock need not be the innermost, but it must
						// be on the stack.
						if !held[op.Res] {
							t.Fatalf("seed %d task %d: releases unheld q%d", seed, ti, op.Res)
						}
						held[op.Res] = false
						found := false
						for i := len(stack) - 1; i >= 0; i-- {
							if stack[i] == op.Res {
								stack = append(stack[:i], stack[i+1:]...)
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("seed %d task %d: release q%d not on stack", seed, ti, op.Res)
						}
					}
				}
				if acquires > cfg.Ops {
					t.Fatalf("seed %d task %d: %d acquires, budget %d", seed, ti, acquires, cfg.Ops)
				}
				if len(stack) != prog.Lost {
					t.Fatalf("seed %d task %d: %d locks held at end but Lost=%d",
						seed, ti, len(stack), prog.Lost)
				}
				if prog.CrashAt < -1 || prog.CrashAt >= len(prog.Ops) {
					t.Fatalf("seed %d task %d: CrashAt=%d with %d ops", seed, ti, prog.CrashAt, len(prog.Ops))
				}
			}
		}
	}
}

// TestExecInvariants runs a contended parameter point with the deep oracle
// on every seed: no PDDA-vs-HasCycle disagreement, no matrix validation
// failure, no runtime deadlock outside the static cycle prediction, no
// claim-set escape — and detection latency bounded by the scan period.
func TestExecInvariants(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Resources = 6
	deadlocks := 0
	for seed := uint64(0); seed < 500; seed++ {
		sc, err := Generate(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := Derive(sc)
		res := Exec(sc, st, true)
		if res.MismatchAt != "" {
			t.Fatalf("invariant violation: %s\n%s", res.MismatchAt, sc)
		}
		if res.Outcome == Deadlocked {
			deadlocks++
			lat := res.DetectRound - res.FormRound
			if lat < 0 || lat >= cfg.DetectEvery {
				t.Fatalf("seed %d: detection latency %d outside [0,%d)", seed, lat, cfg.DetectEvery)
			}
			if res.CycleLen < 2 {
				// Generated tasks never request a lock they hold, so every
				// runtime cycle involves at least two processes.
				t.Fatalf("seed %d: witness cycle of %d processes", seed, res.CycleLen)
			}
		}
		if res.Outcome == FuseExceeded {
			t.Fatalf("seed %d: fuse exceeded — executor failed to quiesce:\n%s", seed, sc)
		}
	}
	if deadlocks == 0 {
		t.Fatal("contended point produced no deadlocks; the invariant checks never ran hot")
	}
}

// TestBlockedRoundsWithinStaticBound fuzzes the abstract analogue of the
// blocking pass's theorem: on a completed run whose static lock-order graph
// is acyclic, no task may spend more rounds blocked than the other tasks'
// total step budget plus one detection period.  The bound itself is asserted
// inside Exec (it surfaces as a MismatchAt); this test drives it across two
// contention points for at least a thousand seeds each and checks the
// invariant actually ran hot on statically acyclic completed runs.
func TestBlockedRoundsWithinStaticBound(t *testing.T) {
	// Two low-contention points: the default config's contended points are
	// almost always statically cyclic, which would leave the bound untested.
	for _, p := range []struct{ tasks, resources int }{{4, 16}, {6, 24}} {
		cfg := DefaultGenConfig()
		cfg.Tasks = p.tasks
		cfg.Resources = p.resources
		acyclicCompleted, blockedRuns := 0, 0
		for seed := uint64(0); seed < 1000; seed++ {
			sc, err := Generate(seed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := Derive(sc)
			res := Exec(sc, st, false)
			if res.MismatchAt != "" {
				t.Fatalf("tasks=%d resources=%d: invariant violation: %s\n%s",
					p.tasks, p.resources, res.MismatchAt, sc)
			}
			if res.Outcome == Completed && !st.HasCycle() {
				acyclicCompleted++
				if res.Blocked > 0 {
					blockedRuns++
				}
			}
		}
		if acyclicCompleted == 0 {
			t.Fatalf("tasks=%d resources=%d: no statically acyclic run completed; the blocking bound never applied",
				p.tasks, p.resources)
		}
		if blockedRuns == 0 {
			t.Fatalf("tasks=%d resources=%d: no acyclic completed run ever blocked; the bound check is vacuous",
				p.tasks, p.resources)
		}
	}
}

// TestPDDAMatchesOracle cross-checks the terminal reduction against the DFS
// oracle on dense random graphs up to 256x256 — far beyond the shapes the
// executor produces.
func TestPDDAMatchesOracle(t *testing.T) {
	sizes := []struct{ m, n int }{{16, 12}, {64, 64}, {128, 96}, {256, 256}}
	rng := det.New(0xfacade)
	for _, sz := range sizes {
		for i := 0; i < 25; i++ {
			g := rag.Random(rng, sz.m, sz.n, 0.4, 0.08)
			if err := g.Matrix().Validate(); err != nil {
				t.Fatalf("%dx%d #%d: %v", sz.m, sz.n, i, err)
			}
			got, _ := pdda.DetectGraph(g)
			if want := g.HasCycle(); got != want {
				t.Fatalf("%dx%d #%d: pdda=%v, oracle=%v", sz.m, sz.n, i, got, want)
			}
		}
	}
}

// TestLintRoundTrip emits scenarios as Go source and checks deltalint's
// real lockorder and claims passes agree with the direct derivation.
func TestLintRoundTrip(t *testing.T) {
	contended := DefaultGenConfig()
	contended.Resources = 6
	sparse := DefaultGenConfig()
	sparse.Tasks = 3
	sparse.Ops = 2
	sawCycle, sawAcyclic := false, false
	for _, cfg := range []GenConfig{contended, sparse} {
		for seed := uint64(0); seed < 5; seed++ {
			sc, err := Generate(seed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := Derive(sc)
			if st.HasCycle() {
				sawCycle = true
			} else {
				sawAcyclic = true
			}
			mismatch, err := LintCheck(sc, st)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if mismatch != "" {
				t.Fatalf("lint round-trip disagrees: %s\n%s", mismatch, sc)
			}
		}
	}
	if !sawCycle || !sawAcyclic {
		t.Fatalf("sample covered only one verdict (cycle=%v acyclic=%v); widen the seed range",
			sawCycle, sawAcyclic)
	}
}

// TestSweepParallelByteIdentical: the full report — counters, histograms,
// witnesses — is byte-identical at any worker count, and the curve behaves:
// deadlock probability rises with contention and is bounded above by the
// static cycle probability at every point.
func TestSweepParallelByteIdentical(t *testing.T) {
	low := DefaultGenConfig()
	low.Resources = 24
	high := DefaultGenConfig()
	high.Resources = 6
	sw := Sweep{
		Points:      []Point{{Label: "m=24", Gen: low}, {Label: "m=6", Gen: high}},
		Seeds:       192,
		BaseSeed:    7,
		OracleEvery: 8,
		LintSample:  1,
		ChunkSize:   32,
	}
	var base []byte
	for _, workers := range []int{1, 3, 8} {
		rep, err := RunSweep(sw, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = out
		} else if !bytes.Equal(base, out) {
			t.Fatalf("workers=%d: report differs from sequential run", workers)
		}
	}

	var rep Report
	if err := json.Unmarshal(base, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("%d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Seeds != sw.Seeds {
			t.Fatalf("point %s aggregated %d seeds, want %d", p.Label, p.Seeds, sw.Seeds)
		}
		if p.DeadlockProbability > p.StaticCycleProbability {
			t.Fatalf("point %s: runtime deadlock probability %.4f exceeds static bound %.4f",
				p.Label, p.DeadlockProbability, p.StaticCycleProbability)
		}
		if p.Mismatches != 0 {
			t.Fatalf("point %s: %d mismatches: %s", p.Label, p.Mismatches, p.FirstMismatch)
		}
		if p.LintChecked != sw.LintSample {
			t.Fatalf("point %s: lint-checked %d seeds, want %d", p.Label, p.LintChecked, sw.LintSample)
		}
	}
	if rep.Points[1].DeadlockProbability <= rep.Points[0].DeadlockProbability {
		t.Fatalf("contention curve flat or inverted: P(m=6)=%.4f <= P(m=24)=%.4f",
			rep.Points[1].DeadlockProbability, rep.Points[0].DeadlockProbability)
	}
}

// TestLatBucket pins the power-of-two histogram mapping.
func TestLatBucket(t *testing.T) {
	cases := []struct{ lat, bucket int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 16, 17}, {1 << 20, latBuckets - 1},
	}
	for _, c := range cases {
		if got := latBucket(c.lat); got != c.bucket {
			t.Errorf("latBucket(%d) = %d, want %d", c.lat, got, c.bucket)
		}
	}
}

// TestDefaultSweepShape pins the stock contention axis.
func TestDefaultSweepShape(t *testing.T) {
	sw := DefaultSweep(1000, 42)
	if len(sw.Points) != 8 {
		t.Fatalf("%d points, want 8", len(sw.Points))
	}
	prev := 0.0
	for _, p := range sw.Points {
		c := p.Gen.Contention()
		if c <= prev {
			t.Fatalf("contention axis not strictly rising at %s: %.3f after %.3f", p.Label, c, prev)
		}
		prev = c
		if err := p.Gen.validate(); err != nil {
			t.Fatalf("point %s: %v", p.Label, err)
		}
	}
}
