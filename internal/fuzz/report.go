// BENCH_fuzz.json: the machine-readable sweep report.  Structs and slices
// only — no maps, no timestamps — so the marshaled bytes are a pure
// function of (sweep config, worker-independent aggregation) and a
// parallel sweep emits byte-identical output to a sequential one.

package fuzz

import "encoding/json"

// Report is the full sweep output.
type Report struct {
	// Config echoes the sweep parameters the curve was measured under.
	Config ReportConfig `json:"config"`
	// Points is the deadlock-probability-vs-contention curve, one entry per
	// parameter point in sweep order.
	Points []PointReport `json:"points"`
}

// ReportConfig echoes the sweep-level knobs.
type ReportConfig struct {
	SeedsPerPoint int    `json:"seeds_per_point"`
	BaseSeed      uint64 `json:"base_seed"`
	OracleEvery   int    `json:"oracle_every"`
	LintSample    int    `json:"lint_sample"`
	ChunkSize     int    `json:"chunk_size"`
}

// PointReport is one parameter point's aggregate.
type PointReport struct {
	Label      string    `json:"label"`
	Gen        GenConfig `json:"gen"`
	Contention float64   `json:"contention"`
	Seeds      int       `json:"seeds"`

	// Outcome counters and the headline probabilities.
	Completed           int     `json:"completed"`
	Deadlocked          int     `json:"deadlocked"`
	Wedged              int     `json:"wedged"`
	FuseExceeded        int     `json:"fuse_exceeded"`
	DeadlockProbability float64 `json:"deadlock_probability"`
	// StaticCycleProbability is the fraction of scenarios whose lock-order
	// graph predicts deadlock.  Static ⊇ runtime means it bounds
	// DeadlockProbability from above at every point.
	StaticCycles           int     `json:"static_cycles"`
	StaticCycleProbability float64 `json:"static_cycle_probability"`

	// Detection latency (rounds between cycle formation and the PDDA scan
	// that reported it), over deadlocked runs.
	DetectionLatencyMean float64 `json:"detection_latency_mean"`
	// DetectionLatencyHist buckets latencies as powers of two: bucket 0 is
	// latency 0, bucket k is [2^(k-1), 2^k).
	DetectionLatencyHist []int `json:"detection_latency_hist"`
	// CycleLengthHist[k] counts witness cycles of k processes (k=0 unused;
	// the last bucket folds longer cycles).
	CycleLengthHist []int `json:"cycle_length_hist"`

	// Workload shape actually generated at this point.
	MeanOps      float64 `json:"mean_ops"`
	MeanBlocked  float64 `json:"mean_blocked"`
	MeanRounds   float64 `json:"mean_rounds"`
	LostReleases int     `json:"lost_releases"`
	CrashedTasks int     `json:"crashed_tasks"`

	// Invariant-check accounting.  BankerChecked/BankerDecisions count the
	// per-seed Banker differential (bitset engine vs per-cell reference);
	// the word-vs-cell PDDA differential runs on every seed's terminal state
	// and folds into Mismatches.
	OracleChecked   int    `json:"oracle_checked"`
	LintChecked     int    `json:"lint_checked"`
	BankerChecked   int    `json:"banker_checked"`
	BankerDecisions int    `json:"banker_decisions"`
	Mismatches      int    `json:"mismatches"`
	FirstMismatch   string `json:"first_mismatch,omitempty"`
}

// NewReport starts a report echoing the sweep config.
func NewReport(sw Sweep) *Report {
	chunk := sw.ChunkSize
	if chunk <= 0 {
		chunk = 1024
	}
	return &Report{
		Config: ReportConfig{
			SeedsPerPoint: sw.Seeds,
			BaseSeed:      sw.BaseSeed,
			OracleEvery:   sw.OracleEvery,
			LintSample:    sw.LintSample,
			ChunkSize:     chunk,
		},
	}
}

// pointReport flattens one merged accumulator into its report row.
func pointReport(p Point, a *Agg) PointReport {
	pr := PointReport{
		Label:           p.Label,
		Gen:             p.Gen,
		Contention:      p.Gen.Contention(),
		Seeds:           a.Seeds,
		Completed:       a.Outcomes[Completed],
		Deadlocked:      a.Outcomes[Deadlocked],
		Wedged:          a.Outcomes[Wedged],
		FuseExceeded:    a.Outcomes[FuseExceeded],
		StaticCycles:    a.StaticCycles,
		LostReleases:    a.LostSum,
		CrashedTasks:    a.CrashedSum,
		OracleChecked:   a.OracleChecked,
		LintChecked:     a.LintChecked,
		BankerChecked:   a.BankerChecked,
		BankerDecisions: a.BankerDecisions,
		Mismatches:      a.Mismatches,
		FirstMismatch:   a.FirstMismatch,
	}
	if a.Seeds > 0 {
		n := float64(a.Seeds)
		pr.DeadlockProbability = float64(a.Outcomes[Deadlocked]) / n
		pr.StaticCycleProbability = float64(a.StaticCycles) / n
		pr.MeanOps = float64(a.OpsSum) / n
		pr.MeanBlocked = float64(a.BlockedSum) / n
		pr.MeanRounds = float64(a.RoundsSum) / n
	}
	if a.LatCount > 0 {
		pr.DetectionLatencyMean = float64(a.LatSum) / float64(a.LatCount)
	}
	pr.DetectionLatencyHist = append([]int(nil), a.LatHist[:]...)
	pr.CycleLengthHist = append([]int(nil), a.CycleLens[:]...)
	return pr
}

// JSON marshals the report deterministically (indented, struct field
// order).
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
