package experiments

import (
	"fmt"

	"deltartos/internal/app"
	"deltartos/internal/daa"
	"deltartos/internal/ddu"
	"deltartos/internal/pdda"
	"deltartos/internal/rag"
	"deltartos/internal/sim"
)

// Extension experiments: not tables of the paper, but the directions its
// Sections 1 and 3.1 motivate — MPSoCs with "hundreds of processors and
// resources" (ext-scale) and parallel shared-memory workloads (ext-parallel).

func init() {
	register(Experiment{
		ID:    "ext-scale",
		Title: "Extension: DDU vs software PDDA as the MPSoC scales (Section 3.1 motivation)",
		Run:   runExtScale,
	})
	register(Experiment{
		ID:    "ext-parallel",
		Title: "Extension: parallel RADIX across PEs with barriers (SPLASH-2 structure)",
		Run:   runExtParallel,
	})
	register(Experiment{
		ID:    "ext-livelock",
		Title: "Extension: livelock under prior-work avoidance (Belik, Banker) vs the DAA's escalation",
		Run:   runExtLivelock,
	})
}

func runExtLivelock(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "ext-livelock",
		Title:  "25-round starvation tape: denials per scheme",
		Header: []string{"scheme", "grants", "denials/refusals", "escalations", "starver unblocked"},
	}
	const rounds = 25

	// Belik: p1 retries q2 forever while p2 waits on q1.
	belik, err := daa.NewBelik(2, 2)
	if err != nil {
		return r, err
	}
	if _, _, err := belik.Request(0, 0); err != nil {
		return r, err
	}
	if _, _, err := belik.Request(1, 1); err != nil {
		return r, err
	}
	if _, _, err := belik.Request(1, 0); err != nil {
		return r, err
	}
	belikDenied := 0
	for i := 0; i < rounds; i++ {
		_, d, err := belik.Request(0, 1)
		if err != nil {
			return r, err
		}
		if d {
			belikDenied++
		}
	}
	r.Rows = append(r.Rows, []string{"Belik path-matrix", "0", fmt.Sprint(belikDenied), "0", "false"})

	// Banker: with full claims, p1's request is unsafe every round.
	bank, err := daa.NewBanker(2, 2)
	if err != nil {
		return r, err
	}
	for p := 0; p < 2; p++ {
		if err := bank.DeclareClaim(p, 0, 1); err != nil {
			return r, err
		}
	}
	if _, err := bank.Request(0, 0); err != nil {
		return r, err
	}
	bankerRefused := 0
	for i := 0; i < rounds; i++ {
		ok, err := bank.Request(1, 1)
		if err != nil {
			return r, err
		}
		if !ok {
			bankerRefused++
		}
	}
	r.Rows = append(r.Rows, []string{"Banker's algorithm", "0", fmt.Sprint(bankerRefused), "0", "false"})

	// DAA: escalates after the threshold and unblocks the starver.
	av, err := daa.New(daa.Config{Procs: 2, Resources: 2, LivelockThreshold: 3})
	if err != nil {
		return r, err
	}
	av.SetPriority(0, 2)
	av.SetPriority(1, 1)
	if _, err := av.Request(0, 0); err != nil {
		return r, err
	}
	if _, err := av.Request(1, 1); err != nil {
		return r, err
	}
	if _, err := av.Request(1, 0); err != nil {
		return r, err
	}
	daaDenied, escalations := 0, 0
	unblocked := false
	for i := 0; i < rounds && !unblocked; i++ {
		res, err := av.Request(0, 1)
		if err != nil {
			return r, err
		}
		switch {
		case res.Livelock:
			escalations++
			// The owner complies: gives up q2, which flows to p1.
			if _, err := av.GiveUp(res.AskedProcess); err != nil {
				return r, err
			}
			unblocked = av.Holder(1) == 0
		case res.Decision == daa.GiveUpRequested:
			daaDenied++
		}
	}
	r.Rows = append(r.Rows, []string{
		"DAA (this paper)", "1", fmt.Sprint(daaDenied), fmt.Sprint(escalations), fmt.Sprint(unblocked),
	})
	if !unblocked {
		return r, fmt.Errorf("DAA failed to unblock the starving process")
	}
	r.Notes = append(r.Notes,
		"Belik's technique (Section 3.3.3) has no livelock mechanism: the same request is denied on every retry",
		"the DAA escalates after LivelockThreshold consecutive give-up answers and asks the owner to release (Section 4.3.1)")
	return r, nil
}

func runExtScale(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "ext-scale",
		Title:  "Detection cost scaling: worst-case chain RAG at size NxN",
		Header: []string{"size", "DDU steps", "DDU cycles", "DDU gates", "PDDA-sw cycles", "sw/hw ratio"},
	}
	for _, n := range []int{5, 10, 20, 50, 100} {
		cfg := ddu.Config{Procs: n, Resources: n}
		steps := ddu.WorstCaseSteps(cfg)
		hwCycles := sim.DDUInvokeCycles(steps)
		nl := ddu.Netlist(cfg)
		mx := rag.Chain(n, n).Matrix()
		_, st := pdda.Detect(mx)
		swCycles := sim.SoftwareDetectCycles(st)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%dx%d", n, n),
			fmt.Sprint(steps),
			fmt.Sprint(hwCycles),
			fmt.Sprint(nl.AreaGates()),
			fmt.Sprint(swCycles),
			fmt.Sprintf("%.0fX", float64(swCycles)/float64(hwCycles)),
		})
	}
	r.Notes = append(r.Notes,
		"software detection grows ~quadratically in matrix size per invocation; the DDU stays within a few bus cycles",
		"this is the paper's Section 3.1 prediction quantified: at 100x100 the software/hardware gap passes four orders of magnitude")
	return r, nil
}

func runExtParallel(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "ext-parallel",
		Title:  "Parallel RADIX (16K keys) with shared allocator and barriers",
		Header: []string{"PEs", "allocator", "total cycles", "mgmt cycles", "speedup", "verified"},
	}
	for _, pes := range []int{1, 2, 4} {
		res := app.RunRadixParallel(app.NewSoCDMMUAllocator, pes, app.WithSimHooks(rc.SimHooks()))
		if !res.Verified {
			return r, fmt.Errorf("parallel radix on %d PEs produced wrong output", pes)
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(pes), "SoCDMMU",
			fmt.Sprint(res.TotalCycles), fmt.Sprint(res.MgmtCycles),
			fmt.Sprintf("%.2fX", res.Speedup), fmt.Sprint(res.Verified),
		})
	}
	sw := app.RunRadixParallel(app.NewGlibcAllocator, 4, app.WithSimHooks(rc.SimHooks()))
	if !sw.Verified {
		return r, fmt.Errorf("parallel radix with software allocator produced wrong output")
	}
	r.Rows = append(r.Rows, []string{
		"4", "glibc malloc/free",
		fmt.Sprint(sw.TotalCycles), fmt.Sprint(sw.MgmtCycles),
		fmt.Sprintf("%.2fX", sw.Speedup), fmt.Sprint(sw.Verified),
	})
	r.Notes = append(r.Notes,
		"the software allocator serializes ranks on the heap lock, so the SoCDMMU advantage grows with PE count")
	return r, nil
}
