package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"deltartos/internal/trace"
)

// captureCampaign runs one campaign with tracing attached and returns the
// marshaled run reports plus the Chrome trace export bytes.
func captureCampaign(t *testing.T, cfg ChaosConfig, workers int) (metrics, traceJSON []byte) {
	t.Helper()
	rc := &RunCtx{Parallel: workers, Session: trace.NewSession(), Label: "chaos"}
	_, runs, err := RunChaosCampaign(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err = json.Marshal(runs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rc.Session.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return metrics, buf.Bytes()
}

// Same seed set => byte-identical run reports and trace export; a different
// seed set must diverge.  This is the determinism contract of DESIGN.md s7.
func TestChaosCampaignDeterministic(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 2

	m1, t1 := captureCampaign(t, cfg, 1)
	m2, t2 := captureCampaign(t, cfg, 1)
	if !bytes.Equal(m1, m2) {
		t.Errorf("same seeds produced different run reports:\n%s\n---\n%s", m1, m2)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("same seeds produced different trace exports")
	}

	cfg.BaseSeed += 100
	m3, t3 := captureCampaign(t, cfg, 1)
	if bytes.Equal(m1, m3) {
		t.Error("different seeds produced identical run reports")
	}
	if bytes.Equal(t1, t3) {
		t.Error("different seeds produced identical trace exports")
	}
}

// The parallel campaign engine must be invisible in the output: any worker
// count produces byte-identical run reports, counters, and trace exports.
// This is the acceptance gate for `deltasim -parallel N`.
func TestChaosCampaignParallelMatchesSequential(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 8

	seqM, seqT := captureCampaign(t, cfg, 1)
	for _, workers := range []int{2, 4, 32} {
		parM, parT := captureCampaign(t, cfg, workers)
		if !bytes.Equal(seqM, parM) {
			t.Errorf("workers=%d: run reports differ from sequential:\n%s\n---\n%s", workers, seqM, parM)
		}
		if !bytes.Equal(seqT, parT) {
			t.Errorf("workers=%d: trace exports differ from sequential", workers)
		}
	}
}

// Per-seed counters folded through the session must not depend on the worker
// count either (adoption order is input order, not completion order).
func TestChaosCampaignParallelCountersMatch(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 6

	counters := func(workers int) map[string]uint64 {
		rc := &RunCtx{Parallel: workers, Session: trace.NewSession(), Label: "chaos"}
		if _, _, err := RunChaosCampaign(cfg, rc); err != nil {
			t.Fatal(err)
		}
		return rc.Counters()
	}
	seq := counters(1)
	par := counters(4)
	if len(seq) == 0 {
		t.Fatal("sequential campaign recorded no counters")
	}
	for k, v := range seq {
		if par[k] != v {
			t.Errorf("counter %s: sequential %d, parallel %d", k, v, par[k])
		}
	}
	if len(par) != len(seq) {
		t.Errorf("counter sets differ: sequential %d keys, parallel %d", len(seq), len(par))
	}
}

// Every run of the default campaign must reach a classified terminal state,
// and any wedged run must carry a diagnosis.
func TestChaosCampaignTerminalStates(t *testing.T) {
	for _, system := range []string{"rtos5", "rtos6"} {
		cfg := DefaultChaosConfig()
		cfg.System = system
		_, runs, err := RunChaosCampaign(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != cfg.Seeds {
			t.Fatalf("%s: %d runs, want %d", system, len(runs), cfg.Seeds)
		}
		for _, run := range runs {
			switch run.Outcome {
			case "survived", "recovered", "degraded":
			case "wedged":
				if run.Diagnosis == "" {
					t.Errorf("%s seed %d: wedged without diagnosis", system, run.Seed)
				}
			default:
				t.Errorf("%s seed %d: unclassified outcome %q", system, run.Seed, run.Outcome)
			}
			if run.UnexplainedLeaks != 0 {
				t.Errorf("%s seed %d: %d blocks recovery failed to reclaim", system, run.Seed, run.UnexplainedLeaks)
			}
		}
	}
}

// A campaign with zero faults must leave the workload untouched: every seed
// survives at the clean-run cycle count with no recovery actions.
func TestChaosZeroFaultsIsClean(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 2
	cfg.Faults = 0
	_, runs, err := RunChaosCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		if run.Outcome != "survived" || run.Recoveries != 0 || run.Fired != 0 {
			t.Errorf("seed %d: zero-fault run not clean: %+v", run.Seed, run)
		}
	}
	if runs[0].Cycles != runs[1].Cycles {
		t.Errorf("zero-fault runs differ: %d vs %d", runs[0].Cycles, runs[1].Cycles)
	}
}

func TestChaosCountersFold(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 2
	_, runs, err := RunChaosCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := ChaosCounters(runs)
	if c["chaos.runs"] != 2 {
		t.Errorf("chaos.runs = %d, want 2", c["chaos.runs"])
	}
	var outcomes uint64
	for _, o := range []string{"survived", "recovered", "degraded", "wedged"} {
		outcomes += c["chaos.outcome."+o]
	}
	if outcomes != 2 {
		t.Errorf("outcome counters sum to %d, want 2", outcomes)
	}
	if c["chaos.faults_fired"]+c["chaos.faults_pending"] != uint64(2*cfg.Faults) {
		t.Errorf("fired+pending = %d, want %d",
			c["chaos.faults_fired"]+c["chaos.faults_pending"], 2*cfg.Faults)
	}
}

// A fuse short enough that no task reaches a terminal state must still
// report WHEN the run wedged: the simulation stop time, not cycles=0.
func TestChaosFullyWedgedRunReportsFuseTime(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Faults = 0
	cfg.Fuse = 100 // far below the ~38.5k-cycle clean schedule
	run, err := RunChaosSeed(cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Outcome != "wedged" {
		t.Fatalf("outcome = %q, want wedged (fuse cuts every task mid-flight)", run.Outcome)
	}
	if run.Cycles == 0 {
		t.Error("fully wedged run reports cycles=0; want the fuse/last-activity time")
	}
	if run.Cycles > cfg.Fuse {
		t.Errorf("cycles = %d beyond the %d-cycle fuse", run.Cycles, cfg.Fuse)
	}
}

// When a seed errors mid-campaign, the trace shards of every seed below the
// failing one are completed work and must be adopted, not silently dropped;
// shards at or above it are dropped deterministically.
func TestChaosCampaignAdoptsCompletedShardsOnError(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = 5
	const failIdx = 3
	failSeed := cfg.BaseSeed + failIdx
	cfg.failSeed = func(seed uint64) error {
		if seed >= failSeed {
			return fmt.Errorf("injected failure at seed %d", seed)
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		rc := &RunCtx{Parallel: workers, Session: trace.NewSession(), Label: "chaos"}
		_, _, err := RunChaosCampaign(cfg, rc)
		if err == nil || err.Error() != fmt.Sprintf("injected failure at seed %d", failSeed) {
			t.Fatalf("workers=%d: err = %v, want injected failure at seed %d", workers, err, failSeed)
		}
		if got := rc.Session.Len(); got != failIdx {
			t.Errorf("workers=%d: session adopted %d shard recorders, want %d (seeds below the failure)",
				workers, got, failIdx)
		}
	}
}

func TestChaosUnknownSystem(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.System = "rtos9"
	if _, _, err := RunChaosCampaign(cfg, nil); err == nil {
		t.Error("unknown lock system accepted")
	}
}
