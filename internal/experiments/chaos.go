package experiments

// The chaos campaign: sweep N seeds of randomized fault plans over the
// chaos scenario (a robot-like workload with SoCDMMU allocations and an
// IDCT ISR), with watchdog-driven recovery attached, and classify every run
// as survived / recovered / degraded / wedged.  Everything is deterministic:
// the same config and seed set produce byte-identical reports.

import (
	"fmt"
	"strings"
	"sync/atomic"

	"deltartos/internal/app"
	"deltartos/internal/campaign"
	"deltartos/internal/fault"
	"deltartos/internal/rtos"
	"deltartos/internal/sim"
	"deltartos/internal/soclc"
)

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Fault-injection campaign: watchdog recovery over the chaos workload",
		Run: func(rc *RunCtx) (Result, error) {
			res, _, err := RunChaosCampaign(DefaultChaosConfig(), rc)
			return res, err
		},
	})
}

// ChaosConfig parameterizes one campaign.
type ChaosConfig struct {
	System        string       // "rtos5" (software locks) or "rtos6" (SoCLC)
	Seeds         int          // number of seeds swept
	BaseSeed      uint64       // first seed; run i uses BaseSeed+i
	Faults        int          // faults per plan
	Kinds         []fault.Kind // fault mix (nil = every kind)
	Horizon       sim.Cycles   // fault arm-time horizon
	Budget        sim.Cycles   // per-task watchdog budget
	MaxRecoveries int          // recovery cap before a run reports wedged
	Fuse          sim.Cycles   // hard simulation limit for wedged runs

	// failSeed, when non-nil, injects an error for matching seeds before the
	// run executes.  Test-only: it exercises the campaign's error path (which
	// the real RunChaosSeed only takes on a config mistake).
	failSeed func(seed uint64) error
}

// DefaultChaosConfig returns the stock campaign: 5 seeds, 6 faults per run
// over the software lock system.  The clean chaos run finishes near 38.5k
// cycles, so the horizon covers the active window, the budget is roughly 2x
// nominal, and the fuse is far beyond any recoverable schedule.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		System:        "rtos5",
		Seeds:         5,
		BaseSeed:      1,
		Faults:        6,
		Horizon:       40000,
		Budget:        80000,
		MaxRecoveries: 10,
		Fuse:          1_000_000,
	}
}

// AllFaultKinds is the default campaign fault mix.
var AllFaultKinds = []fault.Kind{
	fault.LostRelease, fault.TaskCrash, fault.TaskHang, fault.ComputeOverrun,
	fault.SpuriousIRQ, fault.BusStall, fault.LeakedBlock,
}

// ChaosRun is the report of one seeded run.
type ChaosRun struct {
	Seed      uint64     `json:"seed"`
	Outcome   string     `json:"outcome"` // survived | recovered | degraded | wedged
	Diagnosis string     `json:"diagnosis,omitempty"`
	Cycles    sim.Cycles `json:"cycles"` // last task activity (finish or kill)

	Fired     int `json:"fired"`
	Pending   int `json:"pending"`
	Tolerated int `json:"tolerated"`

	Recoveries      int     `json:"recoveries"`
	Restarted       int     `json:"restarted"`
	Abandoned       int     `json:"abandoned"`
	ReclaimedLocks  int     `json:"reclaimed_locks"`
	ReclaimedShorts int     `json:"reclaimed_shorts"`
	ReclaimedBlocks int     `json:"reclaimed_blocks"`
	MeanLatency     float64 `json:"mean_recovery_latency"`

	PlannedLeaks     int `json:"planned_leaks"`     // residual blocks attributed to the plan
	UnexplainedLeaks int `json:"unexplained_leaks"` // residual blocks recovery should have reclaimed
	AllocFailures    int `json:"alloc_failures"`
}

func chaosLockBuilder(system string) (func(k *rtos.Kernel) soclc.Manager, error) {
	switch system {
	case "rtos5":
		return app.NewRTOS5Locks, nil
	case "rtos6":
		return app.NewRTOS6Locks, nil
	}
	return nil, fmt.Errorf("chaos: unknown lock system %q (want rtos5 or rtos6)", system)
}

// RunChaosSeed executes one seeded fault-injection run and classifies it.
// hooks (nil = tracing off) are applied to the simulation the run builds.
func RunChaosSeed(cfg ChaosConfig, seed uint64, hooks *sim.Hooks) (ChaosRun, error) {
	mk, err := chaosLockBuilder(cfg.System)
	if err != nil {
		return ChaosRun{}, err
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllFaultKinds
	}

	w := app.BuildChaosScenario(mk, app.WithSimHooks(hooks))
	plan := fault.NewPlan(seed).Randomize(cfg.Faults, kinds, fault.Profile{
		Tasks:   app.ChaosTaskNames,
		Devices: []string{"IDCT"},
		Horizon: cfg.Horizon,
	})
	plan.Attach(w.K, w.Locks.(fault.LockSystem), w.Mem, w.Devices)
	rec := fault.NewRecovery(w.K, plan, w.Locks.(fault.LockManager), w.Mem,
		fault.RestartOnce, cfg.Budget, cfg.MaxRecoveries)
	rec.WatchAll()

	end := w.S.RunUntil(cfg.Fuse)

	run := ChaosRun{
		Seed:            seed,
		Fired:           len(plan.Fired()),
		Pending:         plan.Pending(),
		Tolerated:       plan.Tolerated,
		Recoveries:      rec.Recoveries,
		Restarted:       rec.Restarted,
		Abandoned:       rec.Abandoned,
		ReclaimedLocks:  rec.ReclaimedLocks,
		ReclaimedShorts: rec.ReclaimedShorts,
		ReclaimedBlocks: rec.ReclaimedBlocks,
		MeanLatency:     rec.MeanLatency(),
		AllocFailures:   w.AllocFailures,
	}

	// Terminal-state census.  Cycles is the last task activity, not the
	// simulation end (watchdog deadlines extend the event horizon).
	var stuck []string
	sawTerminal := false
	for _, t := range w.K.Tasks() {
		switch t.State() {
		case rtos.StateDone:
			sawTerminal = true
			if at, ok := t.Finished(); ok && at > run.Cycles {
				run.Cycles = at
			}
		case rtos.StateKilled:
			sawTerminal = true
			if t.KilledAt > run.Cycles {
				run.Cycles = t.KilledAt
			}
		default:
			what := t.BlockedOn()
			if what == "" {
				what = strings.ToLower(fmt.Sprint(t.State()))
			}
			stuck = append(stuck, t.Name+":"+what)
		}
	}
	if !sawTerminal && len(stuck) > 0 {
		// Every task is stuck: there is no finish or kill time to report, so
		// the run's Cycles is the time the simulation actually stopped (the
		// fuse, or earlier if the event queue drained) — not a bogus 0.
		run.Cycles = end
	}

	// Leak audit: residual live blocks are fine only when the plan leaked
	// them (a dropped G_dealloc whose owner was never a recovery victim);
	// anything else is a block recovery failed to reclaim.
	for _, addr := range w.Mem.Live() {
		switch {
		case w.Mem.Leaked(addr):
			run.PlannedLeaks++
		case chaosTaskLive(w.K, w.Mem.Tag(addr)):
			// A stuck task holding its frame buffer: accounted for by the
			// wedge diagnosis, not as a reclaim failure.
		default:
			run.UnexplainedLeaks++
		}
	}

	switch {
	case rec.GaveUp:
		run.Outcome = "wedged"
		run.Diagnosis = fmt.Sprintf("recovery cap (%d) exhausted", cfg.MaxRecoveries)
		if len(stuck) > 0 {
			run.Diagnosis += "; stuck: " + strings.Join(stuck, " ")
		}
	case len(stuck) > 0:
		run.Outcome = "wedged"
		run.Diagnosis = "non-terminal tasks at fuse: " + strings.Join(stuck, " ")
	case run.UnexplainedLeaks > 0:
		run.Outcome = "wedged"
		run.Diagnosis = fmt.Sprintf("%d residual blocks not plan-attributed", run.UnexplainedLeaks)
	case rec.Abandoned > 0:
		run.Outcome = "degraded"
		run.Diagnosis = fmt.Sprintf("%d task(s) abandoned", rec.Abandoned)
	case rec.Recoveries > 0:
		run.Outcome = "recovered"
	default:
		run.Outcome = "survived"
	}
	return run, nil
}

// runChaosJob is the campaign's per-seed job body: the test-only failure
// injection, then the real seeded run.
func runChaosJob(cfg ChaosConfig, seed uint64, shard *RunCtx) (ChaosRun, error) {
	if cfg.failSeed != nil {
		if err := cfg.failSeed(seed); err != nil {
			return ChaosRun{}, err
		}
	}
	return RunChaosSeed(cfg, seed, shard.SimHooks())
}

func chaosTaskLive(k *rtos.Kernel, name string) bool {
	for _, t := range k.Tasks() {
		if t.Name == name {
			st := t.State()
			return st != rtos.StateDone && st != rtos.StateKilled
		}
	}
	return false
}

// RunChaosCampaign sweeps cfg.Seeds seeds across rc.Workers() cores and
// renders the campaign table.  Each seed is an independent job with its own
// simulation and trace shard; results and shards are merged in seed order,
// so a parallel campaign is byte-identical to a sequential one.  The
// returned runs back the machine-readable -chaos-report output, and the
// Result's notes carry the survived/recovered/degraded/wedged totals.
//
// On a seed failure the campaign still adopts the trace shards of every
// seed below the first failing one — those jobs are guaranteed executed and
// complete (the pool stops dispatching past a failure, never before it) —
// so a failing sweep loses no finished work and its trace output is
// deterministic.  Shards at or above the failing seed are dropped: whether
// those jobs ran depends on what was in flight when the error landed.
func RunChaosCampaign(cfg ChaosConfig, rc *RunCtx) (Result, []ChaosRun, error) {
	if cfg.Seeds <= 0 {
		return Result{}, nil, fmt.Errorf("chaos: need at least one seed")
	}
	runs := make([]ChaosRun, cfg.Seeds)
	shards := make([]*RunCtx, cfg.Seeds)
	var firstFail atomic.Int64
	firstFail.Store(int64(cfg.Seeds))
	err := campaign.Run(cfg.Seeds, rc.Workers(), func(i int) error {
		seed := cfg.BaseSeed + uint64(i)
		shard := rc.Shard(fmt.Sprintf(".seed%d", seed))
		shards[i] = shard
		run, err := runChaosJob(cfg, seed, shard)
		if err != nil {
			for {
				cur := firstFail.Load()
				if int64(i) >= cur || firstFail.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			return err
		}
		runs[i] = run
		return nil
	})
	if rc != nil && rc.Session != nil {
		for i, shard := range shards {
			if int64(i) >= firstFail.Load() {
				break
			}
			if shard != nil {
				rc.Session.Adopt(shard.Session)
			}
		}
	}
	if err != nil {
		return Result{}, nil, err
	}

	r := Result{
		ID:    "chaos",
		Title: fmt.Sprintf("Chaos campaign: %d seeds x %d faults over %s", cfg.Seeds, cfg.Faults, cfg.System),
		Header: []string{"seed", "outcome", "cycles", "fired", "recov", "restart",
			"abandon", "locks", "blocks", "latency", "diagnosis"},
	}
	counts := map[string]int{}
	totalRecov, totalFired := 0, 0
	var latSum float64
	latRuns := 0
	for _, run := range runs {
		counts[run.Outcome]++
		totalRecov += run.Recoveries
		totalFired += run.Fired
		if run.Recoveries > 0 {
			latSum += run.MeanLatency
			latRuns++
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(run.Seed), run.Outcome, fmt.Sprint(run.Cycles),
			fmt.Sprint(run.Fired), fmt.Sprint(run.Recoveries), fmt.Sprint(run.Restarted),
			fmt.Sprint(run.Abandoned), fmt.Sprint(run.ReclaimedLocks),
			fmt.Sprint(run.ReclaimedBlocks), f0(run.MeanLatency), run.Diagnosis,
		})
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"outcomes: %d survived, %d recovered, %d degraded, %d wedged (of %d)",
		counts["survived"], counts["recovered"], counts["degraded"], counts["wedged"], cfg.Seeds))
	r.Notes = append(r.Notes, fmt.Sprintf("faults fired: %d; recovery actions: %d", totalFired, totalRecov))
	if latRuns > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"mean fault-to-reclaimed latency: %.0f cycles over %d recovering runs", latSum/float64(latRuns), latRuns))
	}
	return r, runs, nil
}

// ChaosCounters folds a campaign's runs into the counters registry shape
// (merged into the -metrics summaries next to the tracing-layer counters).
func ChaosCounters(runs []ChaosRun) map[string]uint64 {
	c := map[string]uint64{}
	for _, run := range runs {
		c["chaos.runs"]++
		c["chaos.outcome."+run.Outcome]++
		c["chaos.faults_fired"] += uint64(run.Fired)
		c["chaos.faults_pending"] += uint64(run.Pending)
		c["chaos.misuse_tolerated"] += uint64(run.Tolerated)
		c["chaos.recoveries"] += uint64(run.Recoveries)
		c["chaos.restarted"] += uint64(run.Restarted)
		c["chaos.abandoned"] += uint64(run.Abandoned)
		c["chaos.reclaimed_locks"] += uint64(run.ReclaimedLocks)
		c["chaos.reclaimed_shorts"] += uint64(run.ReclaimedShorts)
		c["chaos.reclaimed_blocks"] += uint64(run.ReclaimedBlocks)
		c["chaos.planned_leaks"] += uint64(run.PlannedLeaks)
		c["chaos.unexplained_leaks"] += uint64(run.UnexplainedLeaks)
		c["chaos.alloc_failures"] += uint64(run.AllocFailures)
	}
	return c
}
