package experiments

import (
	"deltartos/internal/campaign"
	"deltartos/internal/trace"
)

// MatrixRun is the captured output of one experiment in a matrix sweep:
// the rendered table text, the machine-readable summary (when collected)
// and the error, all keyed to the experiment that produced them.
type MatrixRun struct {
	ID       string
	Rendered string
	Summary  Summary
	Err      error
}

// RunMatrix executes the given experiments across a worker pool and merges
// the outputs in input order, so `deltasim -all -parallel N` prints and
// exports exactly what `-parallel 1` does.  Each experiment runs with a
// private trace shard (labels are derived from the experiment id, not from
// a global counter), and the shards are adopted into session afterwards in
// input order.  When the matrix itself is parallel, each experiment runs
// its internal sweeps sequentially — the work is already spread across the
// pool at matrix granularity.
func RunMatrix(exps []Experiment, parallel int, session *trace.Session, collect bool) []MatrixRun {
	outs := make([]MatrixRun, len(exps))
	shards := make([]*trace.Session, len(exps))
	inner := parallel
	if len(exps) > 1 && parallel > 1 {
		inner = 1
	}
	_ = campaign.Run(len(exps), parallel, func(i int) error {
		e := exps[i]
		rc := &RunCtx{Parallel: inner, Label: e.ID}
		if session != nil {
			rc.Session = trace.NewSession()
			shards[i] = rc.Session
		}
		out := MatrixRun{ID: e.ID}
		res, err := e.Run(rc)
		if err != nil {
			out.Err = err
		} else {
			out.Rendered = Render(res)
			if collect {
				out.Summary = NewSummary(res, rc.Counters())
			}
		}
		outs[i] = out
		return nil // errors are per-experiment output, not sweep aborts
	})
	if session != nil {
		for _, sh := range shards {
			session.Adopt(sh)
		}
	}
	return outs
}
