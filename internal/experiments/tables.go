package experiments

import (
	"fmt"

	"deltartos/internal/app"
	"deltartos/internal/dau"
	"deltartos/internal/ddu"
	"deltartos/internal/delta"
	"deltartos/internal/socdmmu"
	"deltartos/internal/verilog"
)

func init() {
	register(Experiment{ID: "table1", Title: "DDU synthesis results (Table 1)", Run: runTable1})
	register(Experiment{ID: "table2", Title: "DAU synthesis results (Table 2)", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Configured RTOS/MPSoCs (Table 3)", Run: runTable3})
	register(Experiment{ID: "table45", Title: "Deadlock detection: DDU vs PDDA in software (Tables 4-5, Fig. 15)", Run: runTable45})
	register(Experiment{ID: "table67", Title: "Grant-deadlock avoidance: DAU vs DAA in software (Tables 6-7, Fig. 16)", Run: runTable67})
	register(Experiment{ID: "table89", Title: "Request-deadlock avoidance: DAU vs DAA in software (Tables 8-9, Fig. 17)", Run: runTable89})
	register(Experiment{ID: "table10", Title: "Robot application: RTOS5 vs RTOS6/SoCLC (Table 10, Figs. 18-20)", Run: runTable10})
	register(Experiment{ID: "table11", Title: "SPLASH-2 kernels with glibc malloc/free (Table 11)", Run: runTable11})
	register(Experiment{ID: "table12", Title: "SPLASH-2 kernels with the SoCDMMU (Table 12)", Run: runTable12})
}

// paperTable1 holds the published synthesis rows.
var paperTable1 = []struct {
	procs, res         int
	lines, area, steps int
}{
	{2, 3, 49, 186, 2},
	{5, 5, 73, 364, 6},
	{7, 7, 102, 455, 10},
	{10, 10, 162, 622, 16},
	{50, 50, 2682, 14142, 96},
}

func runTable1(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "table1",
		Title:  "DDU synthesis: lines of Verilog, NAND2 area, worst-case iterations",
		Header: []string{"size (PxR)", "lines", "paper", "area", "paper", "steps", "paper"},
	}
	for _, p := range paperTable1 {
		sr, err := ddu.Synthesize(ddu.Config{Procs: p.procs, Resources: p.res})
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%dx%d", p.procs, p.res),
			fmt.Sprint(sr.VerilogLines), fmt.Sprint(p.lines),
			fmt.Sprint(sr.AreaGates), fmt.Sprint(p.area),
			fmt.Sprint(sr.WorstSteps), fmt.Sprint(p.steps),
		})
	}
	r.Notes = append(r.Notes,
		"worst-case steps measured by driving the adversarial chain RAG through the hardware step counter")
	return r, nil
}

func runTable2(rc *RunCtx) (Result, error) {
	sr, err := dau.Synthesize(dau.Config{Procs: 5, Resources: 5})
	if err != nil {
		return Result{}, err
	}
	const mpsocGates = 4*1_700_000 + 33_500_000 + 44_000 // 4x MPC755 + 16MB + misc (paper: 40.344M)
	share := 100 * float64(sr.TotalArea) / float64(mpsocGates)
	r := Result{
		ID:     "table2",
		Title:  "DAU synthesis (5 processes x 5 resources)",
		Header: []string{"module", "lines", "paper", "area", "paper", "steps", "paper"},
		Rows: [][]string{
			{"DDU 5x5", fmt.Sprint(sr.DDULines), "203", fmt.Sprint(sr.DDUArea), "364", fmt.Sprint(sr.DDUSteps), "6"},
			{"others (Fig. 14)", fmt.Sprint(sr.OtherLines), "344", fmt.Sprint(sr.OtherArea), "1472", "8", "8"},
			{"total", fmt.Sprint(sr.TotalLines), "547", fmt.Sprint(sr.TotalArea), "1836", fmt.Sprint(sr.AvoidanceSteps), "6x5+8=38"},
		},
		Notes: []string{
			fmt.Sprintf("DAU share of the 40.3M-gate MPSoC: %.4f%% (paper: ~.005%%)", share),
		},
	}
	return r, nil
}

func runTable3(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "table3",
		Title:  "Configured RTOS/MPSoCs",
		Header: []string{"system", "configured components on top of essential pure software RTOS"},
	}
	for _, name := range delta.PresetNames() {
		c, err := delta.Preset(name)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{name, delta.Describe(&c)})
	}
	return r, nil
}

func runTable45(rc *RunCtx) (Result, error) {
	hooks := app.WithSimHooks(rc.SimHooks())
	hw := app.RunDetectionScenario(func() app.Detector {
		d, err := app.NewHardwareDetector(5, 5)
		if err != nil {
			panic(err)
		}
		return d
	}, hooks)
	sw := app.RunDetectionScenario(func() app.Detector { return &app.SoftwareDetector{} }, hooks)
	if !hw.DeadlockFound || !sw.DeadlockFound {
		return Result{}, fmt.Errorf("detection scenario did not reach deadlock")
	}
	sp := speedup(float64(sw.AppCycles), float64(hw.AppCycles))
	r := Result{
		ID:     "table45",
		Title:  "Deadlock detection time and application execution time",
		Header: []string{"method", "alg run time", "paper", "app run time", "paper", "invocations", "paper"},
		Rows: [][]string{
			{"DDU (hardware)", f1(hw.AvgDetectCycles), "1.3", fmt.Sprint(hw.AppCycles), "27714", fmt.Sprint(hw.Invocations), "10"},
			{"PDDA in software", f1(sw.AvgDetectCycles), "1830", fmt.Sprint(sw.AppCycles), "40523", fmt.Sprint(sw.Invocations), "10"},
		},
		Notes: []string{
			fmt.Sprintf("algorithm speed-up: %.0fX (paper: 1408X)", sw.AvgDetectCycles/hw.AvgDetectCycles),
			fmt.Sprintf("application speed-up: %s (paper: 46%%)", pct(sp)),
			"time unit: bus clock cycles; app run time is start to deadlock detection (the app cannot finish)",
		},
	}
	return r, nil
}

func runTable67(rc *RunCtx) (Result, error) {
	hooks := app.WithSimHooks(rc.SimHooks())
	hw := app.RunGrantDeadlockScenario(func() app.AvoidanceBackend {
		b, err := app.NewHardwareAvoidance(5, 5)
		if err != nil {
			panic(err)
		}
		return b
	}, hooks)
	sw := app.RunGrantDeadlockScenario(func() app.AvoidanceBackend {
		b, err := app.NewSoftwareAvoidance(5, 5)
		if err != nil {
			panic(err)
		}
		return b
	}, hooks)
	if !hw.GDlAvoided || !sw.GDlAvoided {
		return Result{}, fmt.Errorf("grant deadlock not avoided: hw=%v sw=%v", hw.GDlAvoided, sw.GDlAvoided)
	}
	r := Result{
		ID:     "table67",
		Title:  "Execution time comparison (G-dl)",
		Header: []string{"method", "alg run time", "paper", "app run time", "paper", "invocations", "paper"},
		Rows: [][]string{
			{"DAU (hardware)", f2(hw.AvgAlgCycles), "7", fmt.Sprint(hw.AppCycles), "34791", fmt.Sprint(hw.Invocations), "12"},
			{"DAA in software", f2(sw.AvgAlgCycles), "2188", fmt.Sprint(sw.AppCycles), "47704", fmt.Sprint(sw.Invocations), "12"},
		},
		Notes: []string{
			fmt.Sprintf("algorithm speed-up: %.0fX (paper: 312X)", sw.AvgAlgCycles/hw.AvgAlgCycles),
			fmt.Sprintf("application speed-up: %s (paper: 37%%)", pct(speedup(float64(sw.AppCycles), float64(hw.AppCycles)))),
			"both runs complete the application with the grant deadlock avoided (IDCT granted to p3 past p2)",
		},
	}
	return r, nil
}

func runTable89(rc *RunCtx) (Result, error) {
	hooks := app.WithSimHooks(rc.SimHooks())
	hw := app.RunRequestDeadlockScenario(func() app.AvoidanceBackend {
		b, err := app.NewHardwareAvoidance(5, 5)
		if err != nil {
			panic(err)
		}
		return b
	}, hooks)
	sw := app.RunRequestDeadlockScenario(func() app.AvoidanceBackend {
		b, err := app.NewSoftwareAvoidance(5, 5)
		if err != nil {
			panic(err)
		}
		return b
	}, hooks)
	if !hw.RDlAvoided || !sw.RDlAvoided {
		return Result{}, fmt.Errorf("request deadlock not avoided: hw=%v sw=%v", hw.RDlAvoided, sw.RDlAvoided)
	}
	r := Result{
		ID:     "table89",
		Title:  "Execution time comparison (R-dl)",
		Header: []string{"method", "alg run time", "paper", "app run time", "paper", "invocations", "paper"},
		Rows: [][]string{
			{"DAU (hardware)", f2(hw.AvgAlgCycles), "7.14", fmt.Sprint(hw.AppCycles), "38508", fmt.Sprint(hw.Invocations), "14"},
			{"DAA in software", f2(sw.AvgAlgCycles), "2102", fmt.Sprint(sw.AppCycles), "55627", fmt.Sprint(sw.Invocations), "14"},
		},
		Notes: []string{
			fmt.Sprintf("algorithm speed-up: %.0fX (paper: 294X)", sw.AvgAlgCycles/hw.AvgAlgCycles),
			fmt.Sprintf("application speed-up: %s (paper: 44%%)", pct(speedup(float64(sw.AppCycles), float64(hw.AppCycles)))),
			"R-dl at t6 resolved by asking p2 (lower priority than p1) to give up the IDCT",
		},
	}
	return r, nil
}

func runTable10(rc *RunCtx) (Result, error) {
	hooks := app.WithSimHooks(rc.SimHooks())
	sw := app.RunRobotScenario(app.NewRTOS5Locks, false, hooks)
	hw := app.RunRobotScenario(app.NewRTOS6Locks, false, hooks)
	r := Result{
		ID:     "table10",
		Title:  "Simulation results of the robot application",
		Header: []string{"metric", "RTOS5", "paper", "RTOS6", "paper", "speedup", "paper"},
		Rows: [][]string{
			{"lock latency", f0(sw.LockLatency), "570", f0(hw.LockLatency), "318",
				fmt.Sprintf("%.2fX", sw.LockLatency/hw.LockLatency), "1.79X"},
			{"lock delay", f0(sw.LockDelay), "6701", f0(hw.LockDelay), "3834",
				fmt.Sprintf("%.2fX", sw.LockDelay/hw.LockDelay), "1.75X"},
			{"overall execution", fmt.Sprint(sw.OverallCycles), "112170", fmt.Sprint(hw.OverallCycles), "78226",
				fmt.Sprintf("%.2fX", float64(sw.OverallCycles)/float64(hw.OverallCycles)), "1.43X"},
		},
		Notes: []string{
			fmt.Sprintf("hard deadlines met: RTOS5=%v RTOS6=%v", sw.DeadlinesMet, hw.DeadlinesMet),
		},
	}
	return r, nil
}

var paperTable11 = map[string][3]float64{ // total, mgmt, pct
	"LU":    {318307, 31512, 9.90},
	"FFT":   {375988, 101998, 27.13},
	"RADIX": {694333, 141491, 20.38},
}

func runTable11(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "table11",
		Title:  "SPLASH-2 kernels using glibc malloc()/free()",
		Header: []string{"benchmark", "total", "paper", "mem mgmt", "paper", "% mgmt", "paper"},
	}
	for _, run := range []func(func() socdmmu.Allocator, ...app.Option) app.SplashResult{app.RunLU, app.RunFFT, app.RunRadix} {
		res := run(app.NewGlibcAllocator, app.WithSimHooks(rc.SimHooks()))
		if !res.Verified {
			return r, fmt.Errorf("%s: kernel output verification failed", res.Benchmark)
		}
		p := paperTable11[res.Benchmark]
		r.Rows = append(r.Rows, []string{
			res.Benchmark,
			fmt.Sprint(res.TotalCycles), f0(p[0]),
			fmt.Sprint(res.MgmtCycles), f0(p[1]),
			pct(res.MgmtPercent), pct(p[2]),
		})
	}
	return r, nil
}

var paperTable12 = map[string][4]float64{ // total, mgmt, mgmt reduction %, exe reduction %
	"LU":    {288271, 1476, 95.31, 9.44},
	"FFT":   {276941, 2951, 97.10, 26.34},
	"RADIX": {558347, 5505, 96.10, 19.59},
}

func runTable12(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "table12",
		Title:  "SPLASH-2 kernels using the SoCDMMU",
		Header: []string{"benchmark", "total", "paper", "mgmt", "paper", "mgmt reduction", "paper", "exe reduction", "paper"},
	}
	for _, run := range []func(func() socdmmu.Allocator, ...app.Option) app.SplashResult{app.RunLU, app.RunFFT, app.RunRadix} {
		hooks := app.WithSimHooks(rc.SimHooks())
		swRes := run(app.NewGlibcAllocator, hooks)
		hwRes := run(app.NewSoCDMMUAllocator, hooks)
		if !hwRes.Verified {
			return r, fmt.Errorf("%s: kernel output verification failed", hwRes.Benchmark)
		}
		p := paperTable12[hwRes.Benchmark]
		mgmtRed := 100 * (1 - float64(hwRes.MgmtCycles)/float64(swRes.MgmtCycles))
		exeRed := 100 * (1 - float64(hwRes.TotalCycles)/float64(swRes.TotalCycles))
		r.Rows = append(r.Rows, []string{
			hwRes.Benchmark,
			fmt.Sprint(hwRes.TotalCycles), f0(p[0]),
			fmt.Sprint(hwRes.MgmtCycles), f0(p[1]),
			pct(mgmtRed), pct(p[2]),
			pct(exeRed), pct(p[3]),
		})
	}
	return r, nil
}

// countVerilogLines is a small helper shared by the figure experiments.
func countVerilogLines(f *verilog.File) int { return verilog.CountLines(f.Emit()) }
