package experiments

import (
	"fmt"

	"deltartos/internal/fuzz"
)

// The fuzz experiment: a small-budget slice of the generative scenario
// sweep (`deltasim -fuzz` runs the full-size version).  It reproduces the
// deadlock-probability phase transition as contention rises and fails hard
// if any standing invariant — PDDA vs the HasCycle oracle, static ⊇
// runtime, the deltalint round-trip — breaks on a sampled seed.

func init() {
	register(Experiment{
		ID:    "ext-fuzz",
		Title: "Extension: generative scenario fuzzing — deadlock probability vs contention",
		Run:   runExtFuzz,
	})
	register(Experiment{
		ID:    "ext-ipc-fuzz",
		Title: "Extension: generative IPC-topology fuzzing — wedge probability vs message loss",
		Run:   runExtIPCFuzz,
	})
}

func runExtFuzz(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "ext-fuzz",
		Title:  "200 seeds/point, 12 tasks, resource count swept (PDDA scan every 4 rounds)",
		Header: []string{"point", "contention", "P(deadlock)", "P(static cycle)", "det.latency", "wedged", "oracle ok", "lint ok"},
	}
	sw := fuzz.DefaultSweep(200, 0x5eed)
	rep, err := RunFuzzSweep(sw, rc)
	if err != nil {
		return r, err
	}
	for _, p := range rep.Points {
		r.Rows = append(r.Rows, []string{
			p.Label,
			f2(p.Contention),
			fmt.Sprintf("%.3f", p.DeadlockProbability),
			fmt.Sprintf("%.3f", p.StaticCycleProbability),
			f1(p.DetectionLatencyMean),
			fmt.Sprintf("%d", p.Wedged),
			fmt.Sprintf("%d", p.OracleChecked),
			fmt.Sprintf("%d", p.LintChecked),
		})
	}
	r.Notes = append(r.Notes,
		"P(static cycle) >= P(deadlock) at every point: the lockorder graph over-approximates the DDU (static ⊇ runtime).",
		"det.latency is the mean rounds between cycle formation and the periodic PDDA scan that reported it.",
	)
	return r, nil
}

func runExtIPCFuzz(rc *RunCtx) (Result, error) {
	r := Result{
		ID:     "ext-ipc-fuzz",
		Title:  "2000 seeds/point, matched message topologies, drop probability swept",
		Header: []string{"point", "P(wedge)", "P(static flag)", "mean core", "mean flagged", "dropped", "completed"},
	}
	sw := fuzz.DefaultIPCSweep(2000, 0x1bc5eed)
	rep, err := RunIPCFuzzSweep(sw, rc)
	if err != nil {
		return r, err
	}
	for _, p := range rep.Points {
		r.Rows = append(r.Rows, []string{
			p.Label,
			fmt.Sprintf("%.3f", p.WedgeProbability),
			fmt.Sprintf("%.3f", p.StaticFlagProbability),
			f2(p.MeanCoreTasks),
			f2(p.MeanFlaggedTasks),
			fmt.Sprintf("%d", p.DroppedSends),
			fmt.Sprintf("%d", p.Completed),
		})
	}
	r.Notes = append(r.Notes,
		"every task in a run's quiescence core is statically flagged (ipc static ⊇ runtime core), checked on every seed.",
		"P(static flag) >= P(wedge) at every point: a wedged run has a non-empty core, and cores are contained.",
	)
	return r, nil
}

// RunFuzzSweep executes a fuzz sweep under the experiment context's worker
// budget and re-checks the standing report invariants.  The deltasim -fuzz
// path shares it so the flag and the registered experiment cannot drift.
func RunFuzzSweep(sw fuzz.Sweep, rc *RunCtx) (*fuzz.Report, error) {
	rep, err := fuzz.RunSweep(sw, rc.Workers())
	if err != nil {
		return rep, err
	}
	for _, p := range rep.Points {
		if p.Mismatches > 0 {
			return rep, fmt.Errorf("point %s: %d invariant violation(s); first: %s",
				p.Label, p.Mismatches, p.FirstMismatch)
		}
		if p.DeadlockProbability > p.StaticCycleProbability {
			return rep, fmt.Errorf("point %s: runtime deadlock probability %.4f exceeds the static bound %.4f",
				p.Label, p.DeadlockProbability, p.StaticCycleProbability)
		}
	}
	return rep, nil
}

// RunIPCFuzzSweep executes an IPC-topology sweep under the experiment
// context's worker budget and re-checks the standing report invariants.
// The deltasim -fuzz-ipc path shares it so the flag and the registered
// experiment cannot drift.
func RunIPCFuzzSweep(sw fuzz.IPCSweep, rc *RunCtx) (*fuzz.IPCReport, error) {
	rep, err := fuzz.RunIPCSweep(sw, rc.Workers())
	if err != nil {
		return rep, err
	}
	for _, p := range rep.Points {
		if p.Violations > 0 {
			return rep, fmt.Errorf("point %s: %d core-containment violation(s); first: %s",
				p.Label, p.Violations, p.FirstViolation)
		}
		if p.WedgeProbability > p.StaticFlagProbability {
			return rep, fmt.Errorf("point %s: wedge probability %.4f exceeds the static bound %.4f",
				p.Label, p.WedgeProbability, p.StaticFlagProbability)
		}
	}
	return rep, nil
}
