package experiments

import (
	"fmt"
	"strings"

	"deltartos/internal/app"
	"deltartos/internal/dau"
	"deltartos/internal/ddu"
	"deltartos/internal/delta"
	"deltartos/internal/pdda"
	"deltartos/internal/rag"
	"deltartos/internal/rtos"
)

func init() {
	register(Experiment{ID: "fig7", Title: "Archi_gen top-file generation (Figure 7, Example 1)", Run: runFig7})
	register(Experiment{ID: "fig11", Title: "State matrix representation (Figure 11, Example 3)", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "One terminal reduction step (Figure 12, Example 4)", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "DDU architecture cells (Figure 13)", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "DAU architecture modules (Figure 14)", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "Events RAG of the detection scenario (Figure 15)", Run: runFig15})
	register(Experiment{ID: "fig16", Title: "Events RAG of the G-dl scenario (Figure 16)", Run: runFig16})
	register(Experiment{ID: "fig17", Title: "Events RAG of the R-dl scenario (Figure 17)", Run: runFig17})
	register(Experiment{ID: "fig20", Title: "Robot execution trace with IPCP (Figure 20)", Run: runFig20})
}

func runFig7(rc *RunCtx) (Result, error) {
	c := delta.BaseMPSoC()
	c.Name = "example1"
	c.Subsystems[0].PEs = 3
	c.Components = []delta.Component{delta.CompSoCLC}
	c.SoCLC.ShortLocks = 8
	c.SoCLC.LongLocks = 8
	c.SoCLC.PEs = 3
	g, err := delta.Generate(&c)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		ID:     "fig7",
		Title:  "Top file generation: LockCache description -> Top.v",
		Header: []string{"artifact", "value"},
		Rows: [][]string{
			{"top file lines", fmt.Sprint(countVerilogLines(g.Top))},
			{"SoCLC component lines", fmt.Sprint(countVerilogLines(g.Components[delta.CompSoCLC]))},
			{"RTOS header lines", fmt.Sprint(len(strings.Split(strings.TrimSpace(g.RTOSHeader), "\n")))},
			{"instantiated PEs", "3 (pe0, pe1, pe2 with distinct ids)"},
		},
	}
	return r, nil
}

func runFig11(rc *RunCtx) (Result, error) {
	// The worked 3-resource / 6-process example family of Section 4.2.1.
	mx := rag.NewMatrix(3, 6)
	mx.Set(0, 0, rag.Grant)
	mx.Set(0, 2, rag.Request)
	mx.Set(1, 1, rag.Request)
	mx.Set(1, 2, rag.Request)
	mx.Set(1, 5, rag.Request)
	mx.Set(2, 3, rag.Grant)
	req, gr := mx.Edges()
	r := Result{
		ID:     "fig11",
		Title:  "Matrix representation of the worked example state",
		Header: []string{"property", "value"},
		Rows: [][]string{
			{"request edges", fmt.Sprint(req)},
			{"grant edges", fmt.Sprint(gr)},
		},
		Notes: []string{"matrix:\n" + mx.String()},
	}
	return r, nil
}

func runFig12(rc *RunCtx) (Result, error) {
	mx := rag.NewMatrix(3, 6)
	mx.Set(0, 0, rag.Grant)
	mx.Set(0, 2, rag.Request)
	mx.Set(1, 1, rag.Request)
	mx.Set(1, 2, rag.Request)
	mx.Set(1, 5, rag.Request)
	mx.Set(2, 3, rag.Grant)
	k, _, trace := pdda.ReduceTraced(mx.Clone())
	if len(trace) == 0 {
		return Result{}, fmt.Errorf("no reduction steps")
	}
	first := trace[0]
	rows := make([]string, len(first.TerminalRows))
	for i, s := range first.TerminalRows {
		rows[i] = fmt.Sprintf("q%d", s+1)
	}
	cols := make([]string, len(first.TerminalCols))
	for i, t := range first.TerminalCols {
		cols[i] = fmt.Sprintf("p%d", t+1)
	}
	r := Result{
		ID:     "fig12",
		Title:  "Terminal reduction sequence on the worked example",
		Header: []string{"property", "value"},
		Rows: [][]string{
			{"terminal rows (step 1)", strings.Join(rows, " ")},
			{"terminal columns (step 1)", strings.Join(cols, " ")},
			{"total reduction steps k", fmt.Sprint(k)},
			{"complete reduction", fmt.Sprint(func() bool { m := mx.Clone(); pdda.Reduce(m); return m.Empty() }())},
		},
	}
	return r, nil
}

func runFig13(rc *RunCtx) (Result, error) {
	cfg := ddu.Config{Procs: 3, Resources: 3}
	nl := ddu.Netlist(cfg)
	f, err := ddu.Generate(cfg)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		ID:     "fig13",
		Title:  "DDU architecture for 3 processes x 3 resources",
		Header: []string{"part", "value"},
		Rows: [][]string{
			{"matrix cells", "9 (3x3)"},
			{"weight cells", "6 (3 row + 3 column)"},
			{"decide cells", "1"},
			{"flip-flops in netlist", fmt.Sprint(nl.FlipFlops())},
			{"NAND2-equivalent area", fmt.Sprint(nl.AreaGates())},
			{"generated Verilog lines", fmt.Sprint(countVerilogLines(f))},
		},
	}
	return r, nil
}

func runFig14(rc *RunCtx) (Result, error) {
	sr, err := dau.Synthesize(dau.Config{Procs: 5, Resources: 5})
	if err != nil {
		return Result{}, err
	}
	r := Result{
		ID:     "fig14",
		Title:  "DAU architecture: DDU + command/status registers + DAA FSM",
		Header: []string{"part", "value"},
		Rows: [][]string{
			{"embedded DDU area", fmt.Sprint(sr.DDUArea)},
			{"command/status/FSM area", fmt.Sprint(sr.OtherArea)},
			{"total area", fmt.Sprint(sr.TotalArea)},
			{"worst-case avoidance steps", fmt.Sprint(sr.AvoidanceSteps)},
		},
	}
	return r, nil
}

func runFig15(rc *RunCtx) (Result, error) {
	// Replay the Table 4 events on a bare graph and show the final RAG that
	// the DDU sees at detection time.
	g := rag.NewGraph(4, 4)
	const vi, idct, wi = 0, 1, 3
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g.SetGrant(idct, 0)) // e1
	must(g.SetGrant(vi, 0))
	g.AddRequest(idct, 2) // e2
	must(g.SetGrant(wi, 2))
	g.AddRequest(idct, 1) // e3
	g.AddRequest(wi, 1)
	must(g.Release(idct, 0)) // e4
	g.RemoveRequest(idct, 1)
	must(g.SetGrant(idct, 1)) // e5: grant to p2 closes the cycle
	dead, _ := pdda.DetectGraph(g)
	r := Result{
		ID:     "fig15",
		Title:  "Events RAG after e5 (deadlock state)",
		Header: []string{"property", "value"},
		Rows: [][]string{
			{"deadlock", fmt.Sprint(dead)},
			{"deadlocked processes", fmt.Sprint(fmtProcs(g.DeadlockedProcesses()))},
		},
		Notes: []string{"matrix:\n" + g.Matrix().String()},
	}
	if !dead {
		return r, fmt.Errorf("figure 15 state should deadlock")
	}
	return r, nil
}

func runFig16(rc *RunCtx) (Result, error) {
	hw := app.RunGrantDeadlockScenario(func() app.AvoidanceBackend {
		b, err := app.NewHardwareAvoidance(5, 5)
		if err != nil {
			panic(err)
		}
		return b
	}, app.WithSimHooks(rc.SimHooks()))
	r := Result{
		ID:     "fig16",
		Title:  "G-dl scenario outcome with the DAU",
		Header: []string{"property", "value"},
		Rows: [][]string{
			{"grant deadlock avoided", fmt.Sprint(hw.GDlAvoided)},
			{"application completed", fmt.Sprint(hw.Completed)},
			{"application cycles", fmt.Sprint(hw.AppCycles)},
		},
	}
	return r, nil
}

func runFig17(rc *RunCtx) (Result, error) {
	hw := app.RunRequestDeadlockScenario(func() app.AvoidanceBackend {
		b, err := app.NewHardwareAvoidance(5, 5)
		if err != nil {
			panic(err)
		}
		return b
	}, app.WithSimHooks(rc.SimHooks()))
	r := Result{
		ID:     "fig17",
		Title:  "R-dl scenario outcome with the DAU",
		Header: []string{"property", "value"},
		Rows: [][]string{
			{"request deadlock avoided", fmt.Sprint(hw.RDlAvoided)},
			{"application completed", fmt.Sprint(hw.Completed)},
			{"application cycles", fmt.Sprint(hw.AppCycles)},
		},
	}
	return r, nil
}

func runFig20(rc *RunCtx) (Result, error) {
	r, _, err := RunFig20(rc)
	return r, err
}

// RunFig20 runs the robot scenario once and returns both the rendered
// Figure 20 excerpt and the full scheduler trace, so callers that also want
// a waveform dump (deltasim -exp fig20 -vcd) do not re-run the scenario.
func RunFig20(rc *RunCtx) (Result, []rtos.TraceEvent, error) {
	res := app.RunRobotScenario(app.NewRTOS6Locks, true, app.WithSimHooks(rc.SimHooks()))
	r := Result{
		ID:     "fig20",
		Title:  "Execution trace of task1/task2/task3 under IPCP (first events)",
		Header: []string{"time", "PE", "task", "event"},
	}
	count := 0
	sawPreempt := false
	for _, ev := range res.Trace {
		if !strings.HasPrefix(ev.Task, "task") {
			continue
		}
		if count < 30 {
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(ev.Time), fmt.Sprint(ev.PE + 1), ev.Task, ev.What,
			})
			count++
		}
		if ev.What == "preempt" {
			sawPreempt = true
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("full trace: %d events; preemptions observed: %v", len(res.Trace), sawPreempt),
		"with IPCP, task3's CS raises it to the ceiling, so task2's arrival does not preempt mid-CS")
	return r, res.Trace, nil
}

func fmtProcs(ps []int) string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("p%d", p+1)
	}
	return strings.Join(out, " ")
}
