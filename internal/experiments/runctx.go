package experiments

import (
	"fmt"

	"deltartos/internal/sim"
	"deltartos/internal/trace"
)

// RunCtx is the per-run injection context that replaced the sim.OnNew
// package global: everything an experiment needs to attach tracing to the
// simulations it builds, plus the worker budget for experiments that sweep
// internally (the chaos campaign).  A nil *RunCtx is valid and means
// "sequential, tracing off" — every method is nil-receiver safe.
type RunCtx struct {
	// Parallel is the worker-pool width for internal sweeps; <=1 runs
	// sequentially.  Output is byte-identical either way.
	Parallel int
	// Session collects the recorders of every simulation this run builds,
	// in deterministic order.  Nil disables tracing.
	Session *trace.Session
	// Label prefixes recorder labels ("<label>#<n>"); the driver sets it
	// to the experiment id.
	Label string
}

// Workers returns the effective worker-pool width (always >= 1).
func (rc *RunCtx) Workers() int {
	if rc == nil || rc.Parallel <= 1 {
		return 1
	}
	return rc.Parallel
}

// SimHooks returns hooks that label and register a recorder for every Sim
// built under this context, or nil when tracing is off.  The hooks append
// to rc.Session and are therefore only safe within one sequential job; a
// parallel sweep gives each job its own shard context (see Shard).
func (rc *RunCtx) SimHooks() *sim.Hooks {
	if rc == nil || rc.Session == nil {
		return nil
	}
	sess, label := rc.Session, rc.Label
	if label == "" {
		label = "run"
	}
	return &sim.Hooks{OnNew: func(s *sim.Sim) {
		s.Rec = sess.NewRecorder(fmt.Sprintf("%s#%d", label, sess.Len()))
	}}
}

// Shard derives the context for one job of a parallel sweep: a private
// session (trace sessions are not safe for concurrent registration) and a
// label derived from the job's input index, so recorder labels — and hence
// trace exports — do not depend on worker interleaving.  Callers adopt the
// shard sessions into rc.Session in input order after the sweep.
func (rc *RunCtx) Shard(suffix string) *RunCtx {
	if rc == nil || rc.Session == nil {
		return nil
	}
	label := rc.Label
	if label == "" {
		label = "run"
	}
	return &RunCtx{Session: trace.NewSession(), Label: label + suffix}
}

// Counters merges the counters of every recorder this context registered
// (nil when tracing is off).
func (rc *RunCtx) Counters() map[string]uint64 {
	if rc == nil || rc.Session == nil {
		return nil
	}
	return rc.Session.CountersFrom(0)
}
