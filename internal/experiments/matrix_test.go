package experiments

import (
	"bytes"
	"errors"
	"testing"

	"deltartos/internal/trace"
)

// matrixExps is a fast cross-section of the registry: a robot figure, a lock
// table, a detection table and an extension sweep.  Running all of them
// keeps the byte-identity test meaningful without paying for the full -all
// matrix on every `go test`.
func matrixExps(t *testing.T) []Experiment {
	t.Helper()
	var exps []Experiment
	for _, id := range []string{"fig20", "table10", "table45", "ext-scale"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	return exps
}

// captureMatrix runs the matrix and flattens everything observable — render
// order, rendered bytes, summaries, trace export — into one byte witness.
func captureMatrix(t *testing.T, parallel int) []byte {
	t.Helper()
	session := trace.NewSession()
	var buf bytes.Buffer
	for _, out := range RunMatrix(matrixExps(t), parallel, session, true) {
		if out.Err != nil {
			t.Fatalf("%s: %v", out.ID, out.Err)
		}
		buf.WriteString(out.Rendered)
	}
	if err := WriteSummaries(&buf, summariesOf(t, parallel)); err != nil {
		t.Fatal(err)
	}
	if err := session.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func summariesOf(t *testing.T, parallel int) []Summary {
	t.Helper()
	var ss []Summary
	for _, out := range RunMatrix(matrixExps(t), parallel, nil, true) {
		if out.Err != nil {
			t.Fatalf("%s: %v", out.ID, out.Err)
		}
		ss = append(ss, out.Summary)
	}
	return ss
}

// `deltasim -all -parallel N` must print and export exactly what
// `-parallel 1` does: the matrix engine merges in input order and labels
// recorders from experiment ids, never from worker interleaving.
func TestRunMatrixParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	seq := captureMatrix(t, 1)
	for _, workers := range []int{2, 4} {
		par := captureMatrix(t, workers)
		if !bytes.Equal(seq, par) {
			t.Errorf("workers=%d: matrix output differs from sequential (%d vs %d bytes)",
				workers, len(seq), len(par))
		}
	}
}

// Errors stay attached to the experiment that raised them and do not abort
// the rest of the matrix.
func TestRunMatrixKeepsErrorsPerExperiment(t *testing.T) {
	boom := Experiment{ID: "boom", Title: "always fails",
		Run: func(rc *RunCtx) (Result, error) { return Result{}, errors.New("boom") }}
	healthy, found := Find("fig20")
	if !found {
		t.Fatal("fig20 not registered")
	}
	outs := RunMatrix([]Experiment{boom, healthy}, 2, nil, false)
	if outs[0].Err == nil {
		t.Error("failing experiment lost its error")
	}
	if outs[1].Err != nil || outs[1].Rendered == "" {
		t.Errorf("healthy experiment was disturbed by a failing sibling: %+v", outs[1].Err)
	}
	if outs[0].ID != "boom" || outs[1].ID != "fig20" {
		t.Errorf("matrix output out of input order: %s, %s", outs[0].ID, outs[1].ID)
	}
}
