package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"deltartos/internal/fault"
	"deltartos/internal/trace"
)

// The robustness claim, pinned: under a message-drop-only fault mix the
// blocking ring demonstrably wedges on some seeds, while the timeout/retry
// variant has zero wedged runs across the same sweep.
func TestIPCChaosDropSweepBlockingWedgesTimeoutNever(t *testing.T) {
	cfg := DefaultIPCChaosConfig()
	cfg.Seeds = 24
	cfg.Faults = 8
	cfg.Kinds = []fault.Kind{fault.MsgDrop}

	cfg.Variant = "blocking"
	_, blocking, err := RunIPCChaosCampaign(cfg, &RunCtx{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	wedged := 0
	for _, run := range blocking {
		if run.Outcome == "wedged" {
			wedged++
			if len(run.Core) == 0 {
				t.Errorf("seed %d: wedged without a latched IPC deadlock core (%s)",
					run.Seed, run.Diagnosis)
			}
		}
	}
	if wedged == 0 {
		t.Error("blocking ring never wedged under message drops; the sweep proves nothing")
	}

	cfg.Variant = "timeout"
	_, hardened, err := RunIPCChaosCampaign(cfg, &RunCtx{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range hardened {
		if run.Outcome == "wedged" {
			t.Errorf("seed %d: timeout variant wedged (%s)", run.Seed, run.Diagnosis)
		}
	}
}

// Every latched core task must be one the scenario actually declares — the
// core names feed the static cross-check, so junk here would poison it.
func TestIPCChaosCoreNamesAreScenarioTasks(t *testing.T) {
	cfg := DefaultIPCChaosConfig()
	cfg.Variant = "blocking"
	cfg.Seeds = 12
	cfg.Faults = 8
	cfg.Kinds = []fault.Kind{fault.MsgDrop, fault.QueueStuckFull}
	_, runs, err := RunIPCChaosCampaign(cfg, &RunCtx{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, n := range []string{"ring0", "ring1", "ring2", "ring3", "ringmon"} {
		known[n] = true
	}
	for _, run := range runs {
		for _, name := range run.Core {
			if !known[name] {
				t.Errorf("seed %d: core names unknown task %q", run.Seed, name)
			}
		}
	}
}

// Parallel width must never change a byte of the campaign report or its
// trace export.
func TestIPCChaosParallelDeterminism(t *testing.T) {
	capture := func(workers int) ([]byte, []byte) {
		cfg := DefaultIPCChaosConfig()
		cfg.Seeds = 6
		cfg.Variant = "blocking"
		rc := &RunCtx{Parallel: workers, Session: trace.NewSession(), Label: "ipc-chaos"}
		_, runs, err := RunIPCChaosCampaign(cfg, rc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := json.Marshal(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rc.Session.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return m, buf.Bytes()
	}
	m1, t1 := capture(1)
	m4, t4 := capture(4)
	if !bytes.Equal(m1, m4) {
		t.Errorf("worker count changed the run reports:\n%s\n---\n%s", m1, m4)
	}
	if !bytes.Equal(t1, t4) {
		t.Error("worker count changed the trace export")
	}
}

func TestIPCChaosUnknownVariant(t *testing.T) {
	cfg := DefaultIPCChaosConfig()
	cfg.Variant = "bogus"
	if _, _, err := RunIPCChaosCampaign(cfg, &RunCtx{Parallel: 1}); err == nil {
		t.Error("unknown variant accepted")
	}
}
