package experiments

import (
	"encoding/json"
	"io"
)

// Summary is the machine-readable form of one experiment run: the rendered
// table plus whatever counters the tracing layer accumulated while the
// experiment's simulations ran.  Counters is nil when tracing was off.
type Summary struct {
	ID       string            `json:"id"`
	Title    string            `json:"title"`
	Header   []string          `json:"header"`
	Rows     [][]string        `json:"rows"`
	Notes    []string          `json:"notes,omitempty"`
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// NewSummary pairs a rendered result with its counters.
func NewSummary(r Result, counters map[string]uint64) Summary {
	return Summary{
		ID:       r.ID,
		Title:    r.Title,
		Header:   r.Header,
		Rows:     r.Rows,
		Notes:    r.Notes,
		Counters: counters,
	}
}

// WriteSummaries emits the summaries as an indented JSON array.  Counter maps
// marshal with sorted keys, so output is deterministic for a deterministic
// run set.
func WriteSummaries(w io.Writer, ss []Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ss)
}
