package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table45", "table67", "table89",
		"table10", "table11", "table12",
		"fig7", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig20",
		"ext-scale", "ext-parallel", "ext-livelock", "ext-fuzz", "ext-ipc-fuzz",
		"chaos", "ipc-chaos",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("table99"); ok {
		t.Error("unknown id found")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("All() not sorted: %s >= %s", all[i-1].ID, all[i].ID)
		}
	}
}

// Every registered experiment must run without error and produce rows.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(nil)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s: no rows", e.ID)
			}
			text := Render(res)
			if !strings.Contains(text, e.ID) {
				t.Errorf("%s: render missing id:\n%s", e.ID, text)
			}
		})
	}
}

func TestRenderAlignment(t *testing.T) {
	r := Result{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell-content", "1"}},
		Notes:  []string{"a note"},
	}
	text := Render(r)
	for _, want := range []string{"== x: demo ==", "wide-cell-content", "long-header", "note: a note", "---"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

func TestSpeedupConvention(t *testing.T) {
	// Hennessy-Patterson: (40523-27714)/27714 = 46.2%.
	if got := speedup(40523, 27714); got < 46 || got > 47 {
		t.Errorf("speedup = %.1f, want ~46.2", got)
	}
	if speedup(10, 0) != 0 {
		t.Error("zero-new speedup should be 0")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	register(Experiment{ID: "table1"})
}

func TestFormatters(t *testing.T) {
	if f0(3.7) != "4" || f1(3.14) != "3.1" || f2(3.14159) != "3.14" || pct(12.34) != "12.3%" {
		t.Error("formatter mismatch")
	}
}
