package experiments

// The IPC chaos campaign: sweep N seeds of randomized message-fault plans
// (drops, delays, duplicates, jammed queues) over the producer/consumer
// ring, and classify every run as survived / recovered / degraded / wedged.
// Two scenario variants make the robustness claim measurable: the blocking
// ring wedges once enough tokens are lost, and the latched IPC deadlock
// core names exactly which tasks are irreducibly stuck; the timeout/retry
// variant bounds every operation and re-mints lost tokens, so the same
// fault mix costs throughput instead of liveness.

import (
	"fmt"
	"strings"
	"sync/atomic"

	"deltartos/internal/app"
	"deltartos/internal/campaign"
	"deltartos/internal/fault"
	"deltartos/internal/rtos"
	"deltartos/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "ipc-chaos",
		Title: "IPC fault-injection campaign: message faults over the producer/consumer ring",
		Run: func(rc *RunCtx) (Result, error) {
			res, _, err := RunIPCChaosCampaign(DefaultIPCChaosConfig(), rc)
			return res, err
		},
	})
}

// IPCFaultKinds is the message-fault mix (the IPC campaign default).
var IPCFaultKinds = []fault.Kind{
	fault.MsgDrop, fault.MsgDelay, fault.MsgDup, fault.QueueStuckFull,
}

// IPCChaosConfig parameterizes one IPC campaign.
type IPCChaosConfig struct {
	Variant  string       // "blocking" (fragile ring) or "timeout" (retry-hardened)
	Seeds    int          // number of seeds swept
	BaseSeed uint64       // first seed; run i uses BaseSeed+i
	Faults   int          // faults per plan
	Kinds    []fault.Kind // fault mix (nil = IPCFaultKinds)
	Horizon  sim.Cycles   // fault arm-time horizon
	Fuse     sim.Cycles   // hard simulation limit for wedged runs
}

// DefaultIPCChaosConfig returns the stock IPC campaign: 8 seeds of 6
// message faults over the timeout-hardened ring.  The clean ring finishes
// near 8k cycles, so the horizon covers the active window; retries and
// backoffs can stretch a faulted run well past nominal, so the fuse is
// generous.
func DefaultIPCChaosConfig() IPCChaosConfig {
	return IPCChaosConfig{
		Variant:  "timeout",
		Seeds:    8,
		BaseSeed: 1,
		Faults:   6,
		Horizon:  12000,
		Fuse:     1_000_000,
	}
}

// IPCChaosRun is the report of one seeded run.
type IPCChaosRun struct {
	Seed      uint64     `json:"seed"`
	Variant   string     `json:"variant"`
	Outcome   string     `json:"outcome"` // survived | recovered | degraded | wedged
	Diagnosis string     `json:"diagnosis,omitempty"`
	Cycles    sim.Cycles `json:"cycles"`

	Fired   int `json:"fired"`
	Pending int `json:"pending"`

	Completed    int `json:"completed"`     // ring tasks that finished their rounds
	Regenerated  int `json:"regenerated"`   // tokens re-minted by the retry path
	SendFailures int `json:"send_failures"` // bounded sends that exhausted retries

	// Core is the latched IPC deadlock core of a wedged run: the tasks
	// irreducibly stuck on message passing when the simulation drained
	// (the runtime half of the static ipc-pass cross-check).
	Core []string `json:"core,omitempty"`
}

func ringBuilder(variant string) (func(opts ...app.Option) *app.RingWorld, error) {
	switch variant {
	case "blocking":
		return app.BuildRingScenario, nil
	case "timeout":
		return app.BuildRingTimeoutScenario, nil
	}
	return nil, fmt.Errorf("unknown variant %q (want blocking or timeout)", variant)
}

// RunIPCChaosSeed executes one seeded message-fault run and classifies it.
func RunIPCChaosSeed(cfg IPCChaosConfig, seed uint64, hooks *sim.Hooks) (IPCChaosRun, error) {
	build, err := ringBuilder(cfg.Variant)
	if err != nil {
		return IPCChaosRun{}, err
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = IPCFaultKinds
	}

	w := build(app.WithSimHooks(hooks))
	plan := fault.NewPlan(seed).Randomize(cfg.Faults, kinds, fault.Profile{
		Tasks:     app.RingTaskNames,
		Endpoints: app.RingEndpointNames,
		Horizon:   cfg.Horizon,
	})
	plan.Attach(w.K, nil, nil, nil)

	end := w.S.RunUntil(cfg.Fuse)

	run := IPCChaosRun{
		Seed:         seed,
		Variant:      cfg.Variant,
		Fired:        len(plan.Fired()),
		Pending:      plan.Pending(),
		Completed:    w.Completed,
		Regenerated:  w.Regenerated,
		SendFailures: w.SendFailures,
	}

	var stuck []string
	sawTerminal := false
	for _, t := range w.K.Tasks() {
		switch t.State() {
		case rtos.StateDone:
			sawTerminal = true
			if at, ok := t.Finished(); ok && at > run.Cycles {
				run.Cycles = at
			}
		case rtos.StateKilled:
			sawTerminal = true
			if t.KilledAt > run.Cycles {
				run.Cycles = t.KilledAt
			}
		default:
			what := t.BlockedOn()
			if what == "" {
				what = strings.ToLower(fmt.Sprint(t.State()))
			}
			stuck = append(stuck, t.Name+":"+what)
		}
	}
	if !sawTerminal && len(stuck) > 0 {
		run.Cycles = end
	}

	switch {
	case len(stuck) > 0:
		run.Outcome = "wedged"
		run.Diagnosis = "non-terminal tasks at drain: " + strings.Join(stuck, " ")
		run.Core = w.K.IPCDeadlockCore()
	case run.SendFailures > 0:
		run.Outcome = "degraded"
		run.Diagnosis = fmt.Sprintf("%d send(s) exhausted retries (token lost downstream)", run.SendFailures)
	case run.Regenerated > 0:
		run.Outcome = "recovered"
		run.Diagnosis = fmt.Sprintf("%d token(s) re-minted", run.Regenerated)
	default:
		run.Outcome = "survived"
	}
	return run, nil
}

// RunIPCChaosCampaign sweeps cfg.Seeds seeds across rc.Workers() cores and
// renders the campaign table.  Same guarantees as RunChaosCampaign: results
// and trace shards merge in seed order, so a parallel campaign is
// byte-identical to a sequential one, and on a seed failure the shards of
// every seed below the first failing one are still adopted.
func RunIPCChaosCampaign(cfg IPCChaosConfig, rc *RunCtx) (Result, []IPCChaosRun, error) {
	if cfg.Seeds <= 0 {
		return Result{}, nil, fmt.Errorf("ipc-chaos: need at least one seed")
	}
	if _, err := ringBuilder(cfg.Variant); err != nil {
		return Result{}, nil, err
	}
	runs := make([]IPCChaosRun, cfg.Seeds)
	shards := make([]*RunCtx, cfg.Seeds)
	var firstFail atomic.Int64
	firstFail.Store(int64(cfg.Seeds))
	err := campaign.Run(cfg.Seeds, rc.Workers(), func(i int) error {
		seed := cfg.BaseSeed + uint64(i)
		shard := rc.Shard(fmt.Sprintf(".seed%d", seed))
		shards[i] = shard
		run, err := RunIPCChaosSeed(cfg, seed, shard.SimHooks())
		if err != nil {
			for {
				cur := firstFail.Load()
				if int64(i) >= cur || firstFail.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			return err
		}
		runs[i] = run
		return nil
	})
	if rc != nil && rc.Session != nil {
		for i, shard := range shards {
			if int64(i) >= firstFail.Load() {
				break
			}
			if shard != nil {
				rc.Session.Adopt(shard.Session)
			}
		}
	}
	if err != nil {
		return Result{}, nil, err
	}

	r := Result{
		ID: "ipc-chaos",
		Title: fmt.Sprintf("IPC chaos campaign: %d seeds x %d message faults over the %s ring",
			cfg.Seeds, cfg.Faults, cfg.Variant),
		Header: []string{"seed", "outcome", "cycles", "fired", "regen", "sendfail", "core", "diagnosis"},
	}
	counts := map[string]int{}
	totalFired, totalRegen := 0, 0
	for _, run := range runs {
		counts[run.Outcome]++
		totalFired += run.Fired
		totalRegen += run.Regenerated
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(run.Seed), run.Outcome, fmt.Sprint(run.Cycles),
			fmt.Sprint(run.Fired), fmt.Sprint(run.Regenerated), fmt.Sprint(run.SendFailures),
			strings.Join(run.Core, " "), run.Diagnosis,
		})
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"outcomes: %d survived, %d recovered, %d degraded, %d wedged (of %d)",
		counts["survived"], counts["recovered"], counts["degraded"], counts["wedged"], cfg.Seeds))
	r.Notes = append(r.Notes, fmt.Sprintf("faults fired: %d; tokens re-minted: %d", totalFired, totalRegen))
	return r, runs, nil
}

// IPCChaosCounters folds a campaign's runs into the counters registry shape
// (merged into the -metrics summaries next to the tracing-layer counters).
func IPCChaosCounters(runs []IPCChaosRun) map[string]uint64 {
	c := map[string]uint64{}
	for _, run := range runs {
		c["ipcchaos.runs"]++
		c["ipcchaos.outcome."+run.Outcome]++
		c["ipcchaos.faults_fired"] += uint64(run.Fired)
		c["ipcchaos.faults_pending"] += uint64(run.Pending)
		c["ipcchaos.regenerated"] += uint64(run.Regenerated)
		c["ipcchaos.send_failures"] += uint64(run.SendFailures)
		c["ipcchaos.core_tasks"] += uint64(len(run.Core))
	}
	return c
}
