// Package experiments registers one reproducible experiment per table and
// figure of the paper's evaluation (Section 5), each printing the same rows
// the paper reports, side by side with the paper's published values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is a rendered experiment: a titled table plus free-form notes.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Experiment is one registered reproduction target.  Run receives the
// injection context (tracing hooks + worker budget); a nil *RunCtx is
// valid and means sequential with tracing off.
type Experiment struct {
	ID    string
	Title string
	Run   func(rc *RunCtx) (Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Render formats a result as an aligned text table.
func Render(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// speedup is the Hennessy–Patterson convention the paper uses:
// (old-new)/new as a percentage.
func speedup(old, new float64) float64 {
	if new == 0 {
		return 0
	}
	return 100 * (old - new) / new
}
