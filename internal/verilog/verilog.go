// Package verilog provides a small structural Verilog-2001 AST and emitter.
//
// The δ framework generators (DDU, DAU, SoCLC, SoCDMMU, Archi_gen top-file
// generation) use this package to emit actual synthesizable-style Verilog
// text.  The paper's synthesis tables report "lines of Verilog" per generated
// unit; the emitter's line counts are the reproduction of that column.
package verilog

import (
	"fmt"
	"sort"
	"strings"
)

// PortDir is the direction of a module port.
type PortDir int

// Port directions.
const (
	Input PortDir = iota
	Output
	Inout
)

func (d PortDir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	case Inout:
		return "inout"
	}
	return "input"
}

// Port is a module port with an optional vector range. Width 1 emits a scalar.
type Port struct {
	Name  string
	Dir   PortDir
	Width int
	Reg   bool // declare as output reg
}

// Net is an internal wire or reg declaration.
type Net struct {
	Name  string
	Width int
	Reg   bool
	Init  string // optional initial value expression for regs
}

// Assign is a continuous assignment `assign LHS = RHS;`.
type Assign struct {
	LHS string
	RHS string
}

// Instance instantiates a sub-module with named port connections.
type Instance struct {
	Module string
	Name   string
	Params []Param    // #(.N(4)) style parameters
	Conns  []PortConn // ordered port connections
}

// Param is a module parameter override on an instance.
type Param struct {
	Name  string
	Value string
}

// PortConn is a named port connection `.port(signal)`.
type PortConn struct {
	Port   string
	Signal string
}

// Always is a procedural block, emitted verbatim under its sensitivity list.
type Always struct {
	Sensitivity string   // e.g. "posedge clk or negedge rst_n", or "*"
	Body        []string // statement lines, emitted with one indent level
}

// Module is one Verilog module under construction.
type Module struct {
	Name       string
	Comment    string // optional header comment (may be multi-line)
	Parameters []Param
	Ports      []Port
	Nets       []Net
	Assigns    []Assign
	Instances  []Instance
	Alwayses   []Always
	Raw        []string // raw body lines appended before endmodule
}

// AddPort appends a port.
func (m *Module) AddPort(name string, dir PortDir, width int) *Module {
	m.Ports = append(m.Ports, Port{Name: name, Dir: dir, Width: width})
	return m
}

// AddOutputReg appends an `output reg` port.
func (m *Module) AddOutputReg(name string, width int) *Module {
	m.Ports = append(m.Ports, Port{Name: name, Dir: Output, Width: width, Reg: true})
	return m
}

// AddWire declares an internal wire.
func (m *Module) AddWire(name string, width int) *Module {
	m.Nets = append(m.Nets, Net{Name: name, Width: width})
	return m
}

// AddReg declares an internal reg.
func (m *Module) AddReg(name string, width int) *Module {
	m.Nets = append(m.Nets, Net{Name: name, Width: width, Reg: true})
	return m
}

// AddAssign appends a continuous assignment.
func (m *Module) AddAssign(lhs, rhs string) *Module {
	m.Assigns = append(m.Assigns, Assign{LHS: lhs, RHS: rhs})
	return m
}

// AddInstance appends a sub-module instance.
func (m *Module) AddInstance(inst Instance) *Module {
	m.Instances = append(m.Instances, inst)
	return m
}

// AddAlways appends a procedural block.
func (m *Module) AddAlways(sens string, body ...string) *Module {
	m.Alwayses = append(m.Alwayses, Always{Sensitivity: sens, Body: body})
	return m
}

func rangeDecl(width int) string {
	if width <= 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", width-1)
}

// Emit renders the module as Verilog source text.
func (m *Module) Emit() string {
	var b strings.Builder
	if m.Comment != "" {
		for _, line := range strings.Split(strings.TrimRight(m.Comment, "\n"), "\n") {
			fmt.Fprintf(&b, "// %s\n", line)
		}
	}
	fmt.Fprintf(&b, "module %s", m.Name)
	if len(m.Parameters) > 0 {
		b.WriteString(" #(\n")
		for i, p := range m.Parameters {
			comma := ","
			if i == len(m.Parameters)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "  parameter %s = %s%s\n", p.Name, p.Value, comma)
		}
		b.WriteString(")")
	}
	if len(m.Ports) == 0 {
		b.WriteString(";\n")
	} else {
		b.WriteString(" (\n")
		for i, p := range m.Ports {
			comma := ","
			if i == len(m.Ports)-1 {
				comma = ""
			}
			kind := p.Dir.String()
			if p.Reg {
				kind += " reg"
			}
			fmt.Fprintf(&b, "  %s %s%s%s\n", kind, rangeDecl(p.Width), p.Name, comma)
		}
		b.WriteString(");\n")
	}
	if len(m.Nets) > 0 {
		b.WriteString("\n")
		for _, n := range m.Nets {
			kind := "wire"
			if n.Reg {
				kind = "reg"
			}
			if n.Init != "" {
				fmt.Fprintf(&b, "  %s %s%s = %s;\n", kind, rangeDecl(n.Width), n.Name, n.Init)
			} else {
				fmt.Fprintf(&b, "  %s %s%s;\n", kind, rangeDecl(n.Width), n.Name)
			}
		}
	}
	if len(m.Assigns) > 0 {
		b.WriteString("\n")
		for _, a := range m.Assigns {
			fmt.Fprintf(&b, "  assign %s = %s;\n", a.LHS, a.RHS)
		}
	}
	for _, inst := range m.Instances {
		b.WriteString("\n")
		fmt.Fprintf(&b, "  %s", inst.Module)
		if len(inst.Params) > 0 {
			b.WriteString(" #(")
			for i, p := range inst.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, ".%s(%s)", p.Name, p.Value)
			}
			b.WriteString(")")
		}
		fmt.Fprintf(&b, " %s (\n", inst.Name)
		for i, c := range inst.Conns {
			comma := ","
			if i == len(inst.Conns)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "    .%s(%s)%s\n", c.Port, c.Signal, comma)
		}
		b.WriteString("  );\n")
	}
	for _, a := range m.Alwayses {
		b.WriteString("\n")
		fmt.Fprintf(&b, "  always @(%s) begin\n", a.Sensitivity)
		for _, line := range a.Body {
			fmt.Fprintf(&b, "    %s\n", line)
		}
		b.WriteString("  end\n")
	}
	if len(m.Raw) > 0 {
		b.WriteString("\n")
		for _, line := range m.Raw {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// File is a collection of modules emitted into one source file.
type File struct {
	Header  string // optional banner comment
	Modules []*Module
}

// Add appends a module to the file and returns it for chaining.
func (f *File) Add(m *Module) *Module {
	f.Modules = append(f.Modules, m)
	return m
}

// Emit renders the whole file.
func (f *File) Emit() string {
	var b strings.Builder
	if f.Header != "" {
		for _, line := range strings.Split(strings.TrimRight(f.Header, "\n"), "\n") {
			fmt.Fprintf(&b, "// %s\n", line)
		}
		b.WriteString("\n")
	}
	for i, m := range f.Modules {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(m.Emit())
	}
	return b.String()
}

// CountLines returns the number of non-blank source lines in text — the
// "lines of Verilog" metric reported in the paper's synthesis tables.
func CountLines(text string) int {
	n := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// ModuleNames returns the sorted names of all modules in the file.
func (f *File) ModuleNames() []string {
	names := make([]string, 0, len(f.Modules))
	for _, m := range f.Modules {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}

// ValidateIdent reports whether s is a legal simple Verilog identifier.
func ValidateIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		case r == '$':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return !reserved[s]
}

var reserved = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "assign": true, "always": true,
	"begin": true, "end": true, "if": true, "else": true, "case": true,
	"endcase": true, "for": true, "while": true, "posedge": true,
	"negedge": true, "parameter": true, "initial": true, "function": true,
	"endfunction": true, "task": true, "endtask": true, "integer": true,
}

// Check validates the file for duplicate module names, duplicate ports/nets
// within each module, references to undefined instance modules (unless the
// name is in extern), and illegal identifiers. It returns a list of problems,
// empty when the file is well-formed.
func (f *File) Check(extern map[string]bool) []string {
	var problems []string
	defined := map[string]bool{}
	for _, m := range f.Modules {
		if !ValidateIdent(m.Name) {
			problems = append(problems, fmt.Sprintf("illegal module name %q", m.Name))
		}
		if defined[m.Name] {
			problems = append(problems, fmt.Sprintf("duplicate module %q", m.Name))
		}
		defined[m.Name] = true
		seen := map[string]bool{}
		for _, p := range m.Ports {
			if !ValidateIdent(p.Name) {
				problems = append(problems, fmt.Sprintf("%s: illegal port name %q", m.Name, p.Name))
			}
			if seen[p.Name] {
				problems = append(problems, fmt.Sprintf("%s: duplicate port %q", m.Name, p.Name))
			}
			seen[p.Name] = true
		}
		for _, n := range m.Nets {
			if !ValidateIdent(n.Name) {
				problems = append(problems, fmt.Sprintf("%s: illegal net name %q", m.Name, n.Name))
			}
			if seen[n.Name] {
				problems = append(problems, fmt.Sprintf("%s: duplicate net %q", m.Name, n.Name))
			}
			seen[n.Name] = true
		}
	}
	for _, m := range f.Modules {
		for _, inst := range m.Instances {
			if !defined[inst.Module] && (extern == nil || !extern[inst.Module]) {
				problems = append(problems,
					fmt.Sprintf("%s: instance %q of undefined module %q", m.Name, inst.Name, inst.Module))
			}
		}
	}
	return problems
}
