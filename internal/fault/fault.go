// Package fault implements deterministic, seedable fault injection and
// recovery for the δ stack.  A Plan schedules typed faults — lost lock
// releases, task crashes and hangs, compute overruns, spurious device
// interrupts, transient bus stalls, leaked SoCDMMU blocks — against named
// tasks and resources at chosen cycles.  All randomness is consumed from a
// seeded splitmix64 generator before the simulation starts, and fault
// matching at runtime is a pure function of simulation state, so the same
// seed always produces a byte-identical trace.  A Recovery pairs the plan
// with watchdog timers and a victim-selection policy that turns otherwise
// fatal faults into measurable recoveries.
package fault

import (
	"fmt"
	"sort"

	"deltartos/internal/det"
	"deltartos/internal/rtos"
	"deltartos/internal/sim"
	"deltartos/internal/socdmmu"
	"deltartos/internal/soclc"
	"deltartos/internal/trace"
)

// Kind enumerates the injectable fault types.
type Kind int

// Fault kinds.
const (
	// LostRelease loses a long-lock release command in flight: the task
	// continues as if it released, the lock stays held.
	LostRelease Kind = iota
	// TaskCrash kills a task at its next compute chunk after the armed
	// cycle, mid-critical-section if it holds anything.
	TaskCrash
	// TaskHang parks a task forever at its next compute chunk, holding
	// whatever it holds; only recovery can remove it.
	TaskHang
	// ComputeOverrun stretches one compute chunk by Extra cycles.
	ComputeOverrun
	// SpuriousIRQ raises a device's interrupt line with no completed job
	// behind it.
	SpuriousIRQ
	// BusStall seizes the shared bus for Extra cycles (a rogue master).
	BusStall
	// LeakedBlock loses one SoCDMMU G_dealloc command: the task believes it
	// freed the block, the allocation table keeps it (a leak).
	LeakedBlock
	// MsgDrop silently discards one IPC send: the sender sees success, the
	// message never arrives.
	MsgDrop
	// MsgDelay holds one IPC send in flight for Extra cycles before
	// delivering it; the sender returns immediately.
	MsgDelay
	// MsgDup delivers one queue send twice (a retransmission artifact).
	MsgDup
	// QueueStuckFull jams a queue — senders see it full — for Extra cycles
	// from the armed cycle.
	QueueStuckFull
)

// String names the kind (used in trace event names).
func (k Kind) String() string {
	switch k {
	case LostRelease:
		return "lost-release"
	case TaskCrash:
		return "task-crash"
	case TaskHang:
		return "task-hang"
	case ComputeOverrun:
		return "compute-overrun"
	case SpuriousIRQ:
		return "spurious-irq"
	case BusStall:
		return "bus-stall"
	case LeakedBlock:
		return "leaked-block"
	case MsgDrop:
		return "msg-drop"
	case MsgDelay:
		return "msg-delay"
	case MsgDup:
		return "msg-dup"
	case QueueStuckFull:
		return "queue-stuck-full"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one scheduled fault.  The zero Lock value targets lock 0; use
// AnyLock (or Randomize) for wildcard matching.
type Fault struct {
	Kind     Kind
	Task     string     // target task name ("" = first eligible task)
	Lock     int        // long-lock id for LostRelease (AnyLock = any)
	Device   string     // device name for SpuriousIRQ
	Endpoint string     // IPC endpoint name for message faults ("" = any)
	At       sim.Cycles // armed from this cycle on
	Extra    sim.Cycles // overrun stretch / bus-stall / delay / jam duration

	fired   bool
	firedAt sim.Cycles
	hit     string // task (or device) actually hit
	acked   bool   // consumed by a recovery (latency bookkeeping)
}

// AnyLock makes a LostRelease fault match whichever lock is released next.
const AnyLock = -1

// Occurrence reports one fired fault.
type Occurrence struct {
	Kind Kind
	Hit  string // task or device actually hit
	At   sim.Cycles
}

// Plan is a deterministic fault schedule plus its runtime matching state.
// Build with NewPlan, populate with Add/Randomize, wire with Attach, then
// run the simulation.
type Plan struct {
	Seed   uint64
	faults []*Fault

	s *sim.Sim

	// Tolerated counts API-misuse events the plan's misuse policy survived
	// (each is also emitted as a fault.misuse trace event).
	Tolerated int
}

// NewPlan creates an empty plan for the given seed.  The seed is consumed
// only by Randomize; hand-built plans are deterministic by construction.
func NewPlan(seed uint64) *Plan { return &Plan{Seed: seed} }

// Add appends one fault to the plan.
func (p *Plan) Add(f Fault) *Plan {
	p.faults = append(p.faults, &f)
	return p
}

// Len returns the number of scheduled faults.
func (p *Plan) Len() int { return len(p.faults) }

// Profile describes the scenario surface Randomize draws targets from.
type Profile struct {
	Tasks     []string   // task names faults may target
	Devices   []string   // device names SpuriousIRQ may target
	Endpoints []string   // IPC endpoint names message faults may target
	Horizon   sim.Cycles // arm cycles are uniform in [0, Horizon)
}

// Randomize appends n faults drawn from kinds with the plan's seed.  All
// PRNG consumption happens here, before the simulation runs.
func (p *Plan) Randomize(n int, kinds []Kind, prof Profile) *Plan {
	if n <= 0 || len(kinds) == 0 || len(prof.Tasks) == 0 || prof.Horizon == 0 {
		return p
	}
	rng := det.New(p.Seed)
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		if k == SpuriousIRQ && len(prof.Devices) == 0 {
			k = BusStall // degrade gracefully on device-less scenarios
		}
		if len(prof.Endpoints) == 0 &&
			(k == MsgDrop || k == MsgDelay || k == MsgDup || k == QueueStuckFull) {
			k = BusStall // degrade gracefully on IPC-less scenarios
		}
		f := Fault{Kind: k, Lock: AnyLock, At: sim.Cycles(rng.Uint64()) % prof.Horizon}
		switch k {
		case LostRelease, TaskCrash, TaskHang, LeakedBlock:
			f.Task = prof.Tasks[rng.Intn(len(prof.Tasks))]
		case ComputeOverrun:
			f.Task = prof.Tasks[rng.Intn(len(prof.Tasks))]
			f.Extra = 500 + sim.Cycles(rng.Intn(4500))
		case SpuriousIRQ:
			f.Device = prof.Devices[rng.Intn(len(prof.Devices))]
		case BusStall:
			f.Extra = 50 + sim.Cycles(rng.Intn(950))
		case MsgDrop, MsgDup:
			f.Endpoint = prof.Endpoints[rng.Intn(len(prof.Endpoints))]
		case MsgDelay:
			f.Endpoint = prof.Endpoints[rng.Intn(len(prof.Endpoints))]
			f.Extra = 1000 + sim.Cycles(rng.Intn(9000))
		case QueueStuckFull:
			f.Endpoint = prof.Endpoints[rng.Intn(len(prof.Endpoints))]
			f.Extra = 2000 + sim.Cycles(rng.Intn(8000))
		}
		p.faults = append(p.faults, &f)
	}
	return p
}

// LockSystem is the lock-manager surface the plan injects into; both
// soclc.SoftwareLocks and soclc.LockCache implement it.
type LockSystem interface {
	SetInjector(soclc.Injector)
}

// Attach wires the plan into a configured system: the kernel's fault
// injector and misuse policy, the lock manager's and allocator's drop
// injectors, and one standing proc per BusStall/SpuriousIRQ fault.  Any of
// locks/mem/devs may be nil/empty.  Call once, before the simulation runs.
func (p *Plan) Attach(k *rtos.Kernel, locks LockSystem, mem *socdmmu.Unit, devs []*sim.Device) {
	p.s = k.S
	k.SetFaultInjector(p)
	k.SetIPCInjector(p)
	k.SetMisusePolicy(p.tolerate)
	if locks != nil {
		locks.SetInjector(p)
	}
	if mem != nil {
		mem.SetInjector(p)
	}
	for i, f := range p.faults {
		f := f
		//deltalint:partial only bus/IRQ faults spawn processes; the rest fire through injector hooks
		switch f.Kind {
		case BusStall:
			k.S.Spawn(fmt.Sprintf("fault.stall.%d", i), -1, func(pr *sim.Proc) {
				if f.At > pr.Now() {
					pr.Delay(f.At - pr.Now())
				}
				p.fire(f, "bus", pr.Now(), int64(f.Extra))
				k.S.Bus.Hold(f.Extra)
			})
		case SpuriousIRQ:
			var dev *sim.Device
			for _, d := range devs {
				if d.Name == f.Device {
					dev = d
					break
				}
			}
			if dev == nil {
				continue // no such device in this scenario; fault stays pending
			}
			k.S.Spawn(fmt.Sprintf("fault.irq.%d", i), -1, func(pr *sim.Proc) {
				if f.At > pr.Now() {
					pr.Delay(f.At - pr.Now())
				}
				p.fire(f, dev.Name, pr.Now(), -1)
				dev.IRQ.WakeAll()
			})
		case QueueStuckFull:
			var q *rtos.Queue
			for _, qq := range k.Queues() {
				if f.Endpoint == "" || qq.Name == f.Endpoint {
					q = qq
					break
				}
			}
			if q == nil {
				continue // no such queue in this scenario; fault stays pending
			}
			k.S.Spawn(fmt.Sprintf("fault.jam.%d", i), -1, func(pr *sim.Proc) {
				if f.At > pr.Now() {
					pr.Delay(f.At - pr.Now())
				}
				p.fire(f, q.Name, pr.Now(), int64(f.Extra))
				q.Jam(f.Extra)
			})
		}
	}
}

// fire marks a fault as having happened and emits its trace event.
func (p *Plan) fire(f *Fault, hit string, now sim.Cycles, arg int64) {
	f.fired = true
	f.firedAt = now
	f.hit = hit
	if p.s != nil {
		if r := p.s.Rec; r != nil {
			r.Record(trace.Event{
				Cycle: now, PE: -1, Proc: "fault",
				Kind: trace.KindFault, Name: "fault." + f.Kind.String(),
				Arg: arg, Verdict: hit,
			})
		}
	}
}

// match returns the first armed, unfired fault of the given kind eligible
// for this (task, lock) at time now.  Matching order is plan order —
// deterministic.
func (p *Plan) match(k Kind, task string, lock int, now sim.Cycles) *Fault {
	for _, f := range p.faults {
		if f.fired || f.Kind != k || now < f.At {
			continue
		}
		if f.Task != "" && f.Task != task {
			continue
		}
		if k == LostRelease && f.Lock != AnyLock && f.Lock != lock {
			continue
		}
		return f
	}
	return nil
}

// matchEndpoint returns the first armed, unfired fault of the given kind
// eligible for this (endpoint, sender) at time now.  Plan order, like match.
func (p *Plan) matchEndpoint(k Kind, endpoint, task string, now sim.Cycles) *Fault {
	for _, f := range p.faults {
		if f.fired || f.Kind != k || now < f.At {
			continue
		}
		if f.Endpoint != "" && f.Endpoint != endpoint {
			continue
		}
		if f.Task != "" && f.Task != task {
			continue
		}
		return f
	}
	return nil
}

// SendFault implements rtos.IPCInjector: consulted once per IPC send, it
// folds every armed message fault matching (endpoint, sender) into one
// verdict.  Drop wins outright; delay and duplicate compose.
func (p *Plan) SendFault(endpoint, task string, now sim.Cycles) rtos.IPCFault {
	var out rtos.IPCFault
	if f := p.matchEndpoint(MsgDrop, endpoint, task, now); f != nil {
		p.fire(f, endpoint, now, -1)
		out.Drop = true
		return out
	}
	if f := p.matchEndpoint(MsgDelay, endpoint, task, now); f != nil {
		p.fire(f, endpoint, now, int64(f.Extra))
		out.Delay = f.Extra
	}
	if f := p.matchEndpoint(MsgDup, endpoint, task, now); f != nil {
		p.fire(f, endpoint, now, -1)
		out.Dup = true
	}
	return out
}

// CrashNow implements rtos.FaultInjector.
func (p *Plan) CrashNow(t *rtos.Task, now sim.Cycles) bool {
	if f := p.match(TaskCrash, t.Name, AnyLock, now); f != nil {
		p.fire(f, t.Name, now, -1)
		return true
	}
	return false
}

// HangNow implements rtos.FaultInjector.
func (p *Plan) HangNow(t *rtos.Task, now sim.Cycles) bool {
	if f := p.match(TaskHang, t.Name, AnyLock, now); f != nil {
		p.fire(f, t.Name, now, -1)
		return true
	}
	return false
}

// OverrunExtra implements rtos.FaultInjector.
func (p *Plan) OverrunExtra(t *rtos.Task, n, now sim.Cycles) sim.Cycles {
	if f := p.match(ComputeOverrun, t.Name, AnyLock, now); f != nil {
		p.fire(f, t.Name, now, int64(f.Extra))
		return f.Extra
	}
	return 0
}

// DropRelease implements soclc.Injector.
func (p *Plan) DropRelease(task string, id int, now sim.Cycles) bool {
	if f := p.match(LostRelease, task, id, now); f != nil {
		p.fire(f, task, now, int64(id))
		return true
	}
	return false
}

// DropFree implements socdmmu.Injector.
func (p *Plan) DropFree(task string, addr socdmmu.Addr, now sim.Cycles) bool {
	if f := p.match(LeakedBlock, task, AnyLock, now); f != nil {
		p.fire(f, task, now, int64(addr))
		return true
	}
	return false
}

// tolerate is the misuse policy the plan installs: every misuse detected
// while a plan is attached is survivable and traced.
func (p *Plan) tolerate(err error) bool {
	p.Tolerated++
	if p.s != nil {
		if r := p.s.Rec; r != nil {
			r.Record(trace.Event{
				Cycle: p.s.Now(), PE: -1, Proc: "fault",
				Kind: trace.KindFault, Name: "fault.misuse",
				Arg: -1, Verdict: err.Error(),
			})
		}
	}
	return true
}

// Fired returns the faults that actually happened, in firing order.
func (p *Plan) Fired() []Occurrence {
	var out []Occurrence
	for _, f := range p.faults {
		if f.fired {
			out = append(out, Occurrence{Kind: f.Kind, Hit: f.hit, At: f.firedAt})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Pending returns how many scheduled faults never fired (their trigger
// condition was never reached).
func (p *Plan) Pending() int {
	n := 0
	for _, f := range p.faults {
		if !f.fired {
			n++
		}
	}
	return n
}

// LeaksPlanned reports whether any LeakedBlock fault fired — the end-of-run
// leak check uses it to separate planned leaks from recovery bugs.
func (p *Plan) LeaksPlanned() bool {
	for _, f := range p.faults {
		if f.Kind == LeakedBlock && f.fired {
			return true
		}
	}
	return false
}

// oldestUnacked returns the firing time of the earliest fault no recovery
// has accounted for yet.
func (p *Plan) oldestUnacked() (sim.Cycles, bool) {
	best, found := ^sim.Cycles(0), false
	for _, f := range p.faults {
		if f.fired && !f.acked && f.firedAt < best {
			best = f.firedAt
			found = true
		}
	}
	return best, found
}

// ackFired marks every fault fired at or before upTo as accounted for.
func (p *Plan) ackFired(upTo sim.Cycles) {
	for _, f := range p.faults {
		if f.fired && f.firedAt <= upTo {
			f.acked = true
		}
	}
}
