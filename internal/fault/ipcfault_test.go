package fault

// Tests for the message fault kinds (drop, delay, duplicate, stuck-full
// queue), their deterministic matching, and victim selection across mixed
// lock+IPC wait chains.

import (
	"testing"

	"deltartos/internal/rtos"
	"deltartos/internal/sim"
)

func TestMsgDropLosesMessage(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 2)
	q := k.NewQueue("q", 2)
	var sentOK bool
	var got interface{}
	k.CreateTask("tx", 0, 1, 0, func(c *rtos.TaskCtx) {
		sentOK = q.SendTimeout(c, "lost", 1000) // dropped: sender still sees success
	})
	k.CreateTask("rx", 1, 1, 0, func(c *rtos.TaskCtx) {
		got, _ = q.RecvTimeout(c, 5000)
	})
	p := NewPlan(1).Add(Fault{Kind: MsgDrop, Endpoint: "q", At: 0})
	p.Attach(k, nil, nil, nil)
	s.Run()
	if !sentOK {
		t.Error("dropped send should report success to the sender")
	}
	if got != nil {
		t.Errorf("receiver got %v from a dropped send", got)
	}
	if q.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", q.Dropped)
	}
	occ := p.Fired()
	if len(occ) != 1 || occ[0].Kind != MsgDrop || occ[0].Hit != "q" {
		t.Errorf("Fired = %+v", occ)
	}
}

func TestMsgDelayHoldsMessageInFlight(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 2)
	q := k.NewQueue("q", 2)
	var sentAt, recvAt sim.Cycles
	k.CreateTask("tx", 0, 1, 0, func(c *rtos.TaskCtx) {
		q.Send(c, 1)
		sentAt = c.Now()
	})
	k.CreateTask("rx", 1, 1, 0, func(c *rtos.TaskCtx) {
		q.Recv(c)
		recvAt = c.Now()
	})
	NewPlan(1).Add(Fault{Kind: MsgDelay, Endpoint: "q", At: 0, Extra: 7000}).
		Attach(k, nil, nil, nil)
	s.Run()
	if recvAt < sentAt+7000 {
		t.Errorf("recv at %d, sent at %d: delay not applied", recvAt, sentAt)
	}
	if q.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", q.Delayed)
	}
}

func TestMsgDupDeliversTwice(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 2)
	q := k.NewQueue("q", 4)
	var got []interface{}
	k.CreateTask("tx", 0, 1, 0, func(c *rtos.TaskCtx) {
		q.Send(c, "once")
	})
	k.CreateTask("rx", 1, 1, 0, func(c *rtos.TaskCtx) {
		for {
			v, ok := q.RecvTimeout(c, 3000)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	NewPlan(1).Add(Fault{Kind: MsgDup, Endpoint: "q", At: 0}).
		Attach(k, nil, nil, nil)
	s.Run()
	if len(got) != 2 || got[0] != "once" || got[1] != "once" {
		t.Errorf("got %v, want the message twice", got)
	}
	if q.Duped != 1 {
		t.Errorf("Duped = %d, want 1", q.Duped)
	}
}

func TestQueueStuckFullJamsSenders(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 2)
	q := k.NewQueue("q", 4)
	var sentAt sim.Cycles
	k.CreateTask("tx", 0, 1, 0, func(c *rtos.TaskCtx) {
		c.Compute(1000) // jam armed at 500 lands before this send
		q.Send(c, 1)
		sentAt = c.Now()
	})
	NewPlan(1).Add(Fault{Kind: QueueStuckFull, Endpoint: "q", At: 500, Extra: 6000}).
		Attach(k, nil, nil, nil)
	s.Run()
	if sentAt < 6500 {
		t.Errorf("send completed at %d, inside the jam window", sentAt)
	}
	if !s.AllDone() {
		t.Errorf("blocked after jam expiry: %v", s.Blocked())
	}
}

// Victim selection must cross IPC edges: the suspect receiver's chain leads
// to the lower-priority peer that would have sent to it.
func TestVictimSelectionAcrossIPCChain(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 2)
	q := k.NewQueue("q", 1)
	q2 := k.NewQueue("q2", 1)
	rx := k.CreateTask("rx", 0, 1, 0, func(c *rtos.TaskCtx) {
		q.Recv(c)
	})
	tx := k.CreateTask("tx", 1, 7, 0, func(c *rtos.TaskCtx) {
		q2.Recv(c) // blocks forever: nobody sends on q2
		q.Send(c, 1)
	})
	q.BindSender(tx)
	r := NewRecovery(k, nil, nil, nil, Abandon, 0, 0)
	var victim string
	s.Spawn("probe", -1, func(p *sim.Proc) {
		p.Delay(5000)
		victim = r.selectVictim(rx).Name
	})
	s.Run()
	if victim != "tx" {
		t.Errorf("victim = %q, want tx (lowest-priority task on the IPC chain)", victim)
	}
}

// Same seed, same randomized IPC fault plan, byte-identical outcome.
func TestIPCFaultDeterminism(t *testing.T) {
	kinds := []Kind{MsgDrop, MsgDelay, MsgDup, QueueStuckFull}
	run := func() (sim.Cycles, int, []Occurrence) {
		s := sim.New()
		k := rtos.NewKernel(s, 2)
		q := k.NewQueue("q", 1)
		delivered := 0
		k.CreateTask("tx", 0, 1, 0, func(c *rtos.TaskCtx) {
			for i := 0; i < 8; i++ {
				q.SendTimeout(c, i, 2000)
				c.Compute(500)
			}
		})
		k.CreateTask("rx", 1, 2, 0, func(c *rtos.TaskCtx) {
			for {
				if _, ok := q.RecvTimeout(c, 4000); !ok {
					return
				}
				delivered++
				c.Compute(300)
			}
		})
		p := NewPlan(99).Randomize(6, kinds, Profile{
			Tasks: []string{"tx", "rx"}, Endpoints: []string{"q"}, Horizon: 10000,
		})
		p.Attach(k, nil, nil, nil)
		s.Run()
		return s.Now(), delivered, p.Fired()
	}
	aEnd, aN, aOcc := run()
	bEnd, bN, bOcc := run()
	if aEnd != bEnd || aN != bN || len(aOcc) != len(bOcc) {
		t.Fatalf("nondeterministic: (%d,%d,%d occ) vs (%d,%d,%d occ)",
			aEnd, aN, len(aOcc), bEnd, bN, len(bOcc))
	}
	for i := range aOcc {
		if aOcc[i] != bOcc[i] {
			t.Errorf("occurrence %d differs: %+v vs %+v", i, aOcc[i], bOcc[i])
		}
	}
	if len(aOcc) == 0 {
		t.Error("randomized plan fired nothing; scenario too quiet to test")
	}
}
