package fault

import (
	"reflect"
	"testing"

	"deltartos/internal/rtos"
	"deltartos/internal/sim"
	"deltartos/internal/socdmmu"
	"deltartos/internal/soclc"
)

func TestTaskCrashUnwindsMidBody(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 1)
	reached := false
	victim := k.CreateTask("a", 0, 1, 0, func(c *rtos.TaskCtx) {
		c.Compute(100)
		c.Compute(100) // the crash is armed before this chunk starts
		reached = true
	})
	NewPlan(1).Add(Fault{Kind: TaskCrash, Task: "a", At: 50}).Attach(k, nil, nil, nil)
	s.Run()
	if reached {
		t.Error("crashed task ran past the fault point")
	}
	if victim.State() != rtos.StateKilled {
		t.Errorf("state = %v, want killed", victim.State())
	}
	if k.Kills != 1 {
		t.Errorf("Kills = %d, want 1", k.Kills)
	}
}

func TestOverrunStretchesCompute(t *testing.T) {
	run := func(plan *Plan) sim.Cycles {
		s := sim.New()
		k := rtos.NewKernel(s, 1)
		var finished sim.Cycles
		k.CreateTask("a", 0, 1, 0, func(c *rtos.TaskCtx) {
			c.Compute(1000)
			finished = c.Now()
		})
		if plan != nil {
			plan.Attach(k, nil, nil, nil)
		}
		s.Run()
		return finished
	}
	clean := run(nil)
	faulty := run(NewPlan(1).Add(Fault{Kind: ComputeOverrun, Task: "a", At: 0, Extra: 250}))
	if faulty != clean+250 {
		t.Errorf("overrun end = %d, want %d", faulty, clean+250)
	}
}

func TestHangThenWatchdogRestartCompletes(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 1)
	runs := 0
	task := k.CreateTask("a", 0, 1, 0, func(c *rtos.TaskCtx) {
		runs++
		c.Compute(200) // hangs here on the first run
		c.Compute(200)
	})
	plan := NewPlan(1).Add(Fault{Kind: TaskHang, Task: "a", At: 50})
	plan.Attach(k, nil, nil, nil)
	rec := NewRecovery(k, plan, nil, nil, RestartOnce, 2000, 8)
	rec.WatchAll()
	s.Run()
	if runs != 2 {
		t.Errorf("body ran %d times, want 2 (hang then restart)", runs)
	}
	if _, done := task.Finished(); !done {
		t.Error("restarted task did not complete")
	}
	if rec.Recoveries != 1 || rec.Restarted != 1 {
		t.Errorf("recoveries=%d restarted=%d, want 1/1", rec.Recoveries, rec.Restarted)
	}
	if len(rec.Latencies) != 1 || rec.Latencies[0] == 0 {
		t.Errorf("latencies = %v, want one nonzero entry", rec.Latencies)
	}
	if task.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", task.Restarts)
	}
}

// buildLockScenario: "low" takes lock 0 and loses the release; "hi" then
// blocks on it forever unless recovery reclaims from the corpse.
func buildLockScenario(t *testing.T, seed uint64) (*sim.Sim, *rtos.Kernel, *soclc.SoftwareLocks, *Plan, *rtos.Task, *rtos.Task) {
	t.Helper()
	s := sim.New()
	k := rtos.NewKernel(s, 2)
	sl := soclc.NewSoftwareLocks(k, 1)
	low := k.CreateTask("low", 0, 5, 0, func(c *rtos.TaskCtx) {
		sl.Acquire(c, 0)
		c.Compute(100)
		sl.Release(c, 0) // dropped by the plan
	})
	hi := k.CreateTask("hi", 1, 1, 500, func(c *rtos.TaskCtx) {
		sl.Acquire(c, 0)
		c.Compute(100)
		sl.Release(c, 0)
	})
	plan := NewPlan(seed).Add(Fault{Kind: LostRelease, Task: "low", Lock: AnyLock, At: 0})
	plan.Attach(k, sl, nil, nil)
	return s, k, sl, plan, low, hi
}

func TestLostReleaseCorpseReclaim(t *testing.T) {
	s, k, sl, plan, low, hi := buildLockScenario(t, 7)
	rec := NewRecovery(k, plan, sl, nil, RestartOnce, 5000, 8)
	rec.WatchAll()
	s.Run()
	if _, done := low.Finished(); !done {
		t.Fatal("low did not finish")
	}
	if _, done := hi.Finished(); !done {
		t.Error("hi never got the lock: corpse reclaim failed")
	}
	// The corpse was done, not killed: recovery must not have killed anyone.
	if k.Kills != 0 {
		t.Errorf("Kills = %d, want 0 (reclaim-only recovery)", k.Kills)
	}
	if rec.ReclaimedLocks != 1 {
		t.Errorf("ReclaimedLocks = %d, want 1", rec.ReclaimedLocks)
	}
	if sl.Owner(0) != nil && sl.Owner(0) != hi {
		t.Errorf("lock 0 still owned by %v", sl.Owner(0))
	}
	if len(plan.Fired()) != 1 {
		t.Errorf("fired = %v, want the lost release", plan.Fired())
	}
}

func TestLostReleaseWithoutRecoveryWedges(t *testing.T) {
	s, k, _, _, _, hi := buildLockScenario(t, 7)
	s.Run()
	if _, done := hi.Finished(); done {
		t.Fatal("hi finished despite the lost release and no recovery")
	}
	dead := k.Deadlocked()
	if len(dead) != 1 || dead[0] != "hi" {
		t.Errorf("Deadlocked = %v, want [hi]", dead)
	}
}

func TestLeakedBlockReclaim(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 1)
	u, err := socdmmu.New(socdmmu.Config{TotalBytes: 256 << 10, BlockBytes: 64 << 10, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	k.CreateTask("a", 0, 1, 0, func(c *rtos.TaskCtx) {
		addr, err := u.Alloc(c, 64<<10)
		if err != nil {
			t.Error(err)
			return
		}
		if err := u.Free(c, addr); err != nil {
			t.Errorf("dropped free must look successful: %v", err)
		}
	})
	plan := NewPlan(3).Add(Fault{Kind: LeakedBlock, Task: "a", At: 0})
	plan.Attach(k, nil, u, nil)
	s.Run()
	if !plan.LeaksPlanned() {
		t.Fatal("leak fault did not fire")
	}
	live := u.Live()
	if len(live) != 1 || !u.Leaked(live[0]) {
		t.Fatalf("leak not attributable: live=%v", live)
	}
	// A recovery pass over the owner reclaims the leak.
	rec := NewRecovery(k, plan, nil, u, Abandon, 0, 0)
	rec.reclaim(k.Tasks()[0])
	if got := u.Live(); len(got) != 0 {
		t.Errorf("blocks leaked after reclaim: %v", got)
	}
	if rec.ReclaimedBlocks != 1 {
		t.Errorf("ReclaimedBlocks = %d, want 1", rec.ReclaimedBlocks)
	}
}

func TestMisuseToleratedUnderPlan(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 1)
	sl := soclc.NewSoftwareLocks(k, 1)
	plan := NewPlan(1)
	plan.Attach(k, sl, nil, nil)
	k.CreateTask("a", 0, 1, 0, func(c *rtos.TaskCtx) {
		sl.Release(c, 0) // release of a free lock: misuse, tolerated
	})
	s.Run()
	if plan.Tolerated != 1 {
		t.Errorf("Tolerated = %d, want 1", plan.Tolerated)
	}
	if !s.AllDone() {
		t.Error("task did not survive the tolerated misuse")
	}
}

func TestBusStallDelaysTraffic(t *testing.T) {
	run := func(stall bool) sim.Cycles {
		s := sim.New()
		k := rtos.NewKernel(s, 1)
		var end sim.Cycles
		k.CreateTask("a", 0, 1, 0, func(c *rtos.TaskCtx) {
			c.Compute(100)
			c.BusRead(4)
			end = c.Now()
		})
		if stall {
			NewPlan(1).Add(Fault{Kind: BusStall, At: 90, Extra: 300}).Attach(k, nil, nil, nil)
		}
		s.Run()
		return end
	}
	clean, stalled := run(false), run(true)
	if stalled <= clean {
		t.Errorf("bus stall had no effect: clean=%d stalled=%d", clean, stalled)
	}
}

func TestRandomizeDeterministicPerSeed(t *testing.T) {
	prof := Profile{Tasks: []string{"a", "b", "c"}, Devices: []string{"IDCT"}, Horizon: 100000}
	kinds := []Kind{LostRelease, TaskCrash, TaskHang, ComputeOverrun, SpuriousIRQ, BusStall, LeakedBlock}
	p1 := NewPlan(42).Randomize(10, kinds, prof)
	p2 := NewPlan(42).Randomize(10, kinds, prof)
	if !reflect.DeepEqual(p1.faults, p2.faults) {
		t.Error("same seed produced different plans")
	}
	p3 := NewPlan(43).Randomize(10, kinds, prof)
	if reflect.DeepEqual(p1.faults, p3.faults) {
		t.Error("different seeds produced identical plans")
	}
	if p1.Len() != 10 {
		t.Errorf("Len = %d, want 10", p1.Len())
	}
}

func TestWatchdogKickAndStop(t *testing.T) {
	s := sim.New()
	k := rtos.NewKernel(s, 1)
	expiries := 0
	tk := k.CreateTask("a", 0, 1, 0, func(c *rtos.TaskCtx) {
		c.Park("forever")
	})
	w := k.Watch(tk, 100, func(w *rtos.Watchdog, p *sim.Proc) {
		expiries++
		if expiries == 1 {
			w.Kick(p.Now() + 100) // one more chance
		} else {
			k.Kill(w.Task())
		}
	})
	s.Run()
	if expiries != 2 {
		t.Errorf("expiries = %d, want 2", expiries)
	}
	if tk.State() != rtos.StateKilled {
		t.Errorf("state = %v, want killed", tk.State())
	}
	w.Stop()
	if w.Expiries != 2 {
		t.Errorf("Expiries = %d", w.Expiries)
	}
}
