package fault

// Recovery: watchdog-driven victim selection, kill, reclaim and restart.
// The counterpart of the plan — faults make tasks wedge, recovery makes the
// system degrade instead of dying.

import (
	"sort"

	"deltartos/internal/rtos"
	"deltartos/internal/sim"
	"deltartos/internal/socdmmu"
	"deltartos/internal/trace"
)

// Policy selects what happens to a victim after its resources are
// reclaimed.
type Policy int

// Policies.
const (
	// RestartOnce revives each victim at most once; a second kill abandons
	// it.
	RestartOnce Policy = iota
	// Abandon never restarts victims.
	Abandon
)

// LockManager is the recovery surface of a lock system; both
// soclc.SoftwareLocks and soclc.LockCache implement it.
type LockManager interface {
	// WaitChain follows task -> blocked-on lock -> owner -> ... (victim
	// selection walks it for the lowest-priority participant).
	WaitChain(t *rtos.Task) []*rtos.Task
	// ReclaimOwnedBy force-releases everything t holds.
	ReclaimOwnedBy(t *rtos.Task) (longs, shorts []int)
	// Holdings lists the long locks t currently owns (diagnostics).
	Holdings(t *rtos.Task) []int
}

// RecoveryOverheadCycles is the fixed cost of one recovery action: victim
// TCB teardown, lock-table walk and allocation-table walk, charged on the
// watchdog's timer context.
const RecoveryOverheadCycles = 120

// Recovery drives watchdog-based deadlock/hang recovery for one kernel.
type Recovery struct {
	k      *rtos.Kernel
	plan   *Plan       // may be nil: recovery works without injection
	locks  LockManager // may be nil
	mem    *socdmmu.Unit
	policy Policy
	budget sim.Cycles // per-task watchdog budget
	max    int        // recovery cap before giving up (0 = unlimited)

	watchdogs []*rtos.Watchdog

	// Instrumentation.
	Recoveries      int
	Restarted       int
	Abandoned       int
	ReclaimedLocks  int
	ReclaimedShorts int
	ReclaimedBlocks int
	Latencies       []sim.Cycles // fault-to-reclaimed, one per recovery
	GaveUp          bool         // recovery cap hit; run reported wedged
}

// NewRecovery builds a recovery harness.  plan, locks and mem are each
// optional.  budget is the per-task watchdog allowance; max caps the number
// of recovery actions (0 = unlimited).
func NewRecovery(k *rtos.Kernel, plan *Plan, locks LockManager, mem *socdmmu.Unit, policy Policy, budget sim.Cycles, max int) *Recovery {
	return &Recovery{k: k, plan: plan, locks: locks, mem: mem, policy: policy, budget: budget, max: max}
}

// WatchAll arms one watchdog per existing task, each expiring budget cycles
// from now.  Call after task creation, before the simulation runs.
func (r *Recovery) WatchAll() {
	deadline := r.k.S.Now() + r.budget
	for _, t := range r.k.Tasks() {
		r.watchdogs = append(r.watchdogs, r.k.Watch(t, deadline, r.onExpire))
	}
}

// onExpire is the watchdog expiry handler: select a victim, recover, re-arm.
func (r *Recovery) onExpire(w *rtos.Watchdog, pr *sim.Proc) {
	if r.max > 0 && r.Recoveries >= r.max {
		r.GaveUp = true
		return
	}
	if t := w.Task(); t.State() == rtos.StateKilled {
		// The task died outside any recovery action (a crash fault killed
		// it directly).  Its corpse may wedge nobody — so no waiter's chain
		// ever reaches it — yet still hold locks or allocation blocks.
		// Reclaim them here and retire the watchdog; a corpse needs no
		// further deadline.
		if r.holdingCount(t) > 0 {
			r.Recoveries++
			r.traceFault(pr.Now(), "recover.reclaim", t.Name)
			pr.Delay(RecoveryOverheadCycles)
			base := r.recoveryBase(pr)
			r.reclaim(t)
			r.finish(pr, base)
		}
		w.Stop()
		return
	}
	r.Recover(pr, w.Task())
	// Every surviving task gets a fresh budget: the recovery perturbed the
	// schedule, so stale deadlines would trigger cascade kills.
	for _, wd := range r.watchdogs {
		wd.Kick(pr.Now() + r.budget)
	}
}

// holdingCount is the number of resources (long locks + allocation blocks)
// t still owns — nonzero means a corpse worth reclaiming.
func (r *Recovery) holdingCount(t *rtos.Task) int {
	n := 0
	if r.locks != nil {
		n += len(r.locks.Holdings(t))
	}
	if r.mem != nil {
		for _, addr := range r.mem.Live() {
			if r.mem.Tag(addr) == t.Name {
				n++
			}
		}
	}
	return n
}

// recoveryBase is the reference time recovery latency is measured from: the
// earliest unacknowledged fault, else now.
func (r *Recovery) recoveryBase(pr *sim.Proc) sim.Cycles {
	if r.plan != nil {
		if ft, ok := r.plan.oldestUnacked(); ok {
			return ft
		}
	}
	return pr.Now()
}

// waitChain walks the mixed wait-for graph from t: the lock manager's
// holder edges plus the kernel's IPC endpoint edges (blocked receiver ->
// senders, blocked sender -> receivers, event waiter -> setters).  BFS with
// deterministic push order; t is always first.
func (r *Recovery) waitChain(t *rtos.Task) []*rtos.Task {
	chain := []*rtos.Task{t}
	seen := map[*rtos.Task]bool{t: true}
	for i := 0; i < len(chain); i++ {
		cur := chain[i]
		var next []*rtos.Task
		if r.locks != nil {
			next = append(next, r.locks.WaitChain(cur)...)
		}
		next = append(next, r.k.WaitPeers(cur)...)
		for _, p := range next {
			if !seen[p] {
				seen[p] = true
				chain = append(chain, p)
			}
		}
	}
	return chain
}

// selectVictim picks the lowest-priority live task on the suspect's mixed
// wait-for chain (the suspect itself when it isn't waiting on anything).
func (r *Recovery) selectVictim(suspect *rtos.Task) *rtos.Task {
	chain := r.waitChain(suspect)
	victim := suspect
	for _, t := range chain {
		//deltalint:partial dead tasks are skipped; every live state is a victim candidate
		switch t.State() {
		case rtos.StateDone, rtos.StateKilled:
			continue
		}
		if t.CurPrio > victim.CurPrio {
			victim = t
		}
	}
	return victim
}

// reclaim force-releases everything t holds across the lock system and the
// allocator.
func (r *Recovery) reclaim(t *rtos.Task) {
	if r.locks != nil {
		longs, shorts := r.locks.ReclaimOwnedBy(t)
		r.ReclaimedLocks += len(longs)
		r.ReclaimedShorts += len(shorts)
	}
	if r.mem != nil {
		r.ReclaimedBlocks += len(r.mem.ReclaimOwnedBy(t.Name))
	}
}

// Recover runs one recovery action against the suspect's wait-for chain.
// If the chain leads to a corpse — a task that completed or was already
// killed while still holding locks (the lost-release shape) — the corpse's
// resources are reclaimed without killing anyone.  Otherwise the selected
// live victim is killed, its resources reclaimed, and it is restarted or
// abandoned per policy.  Runs on any non-task proc (a watchdog timer, a
// detection monitor).
func (r *Recovery) Recover(pr *sim.Proc, suspect *rtos.Task) {
	base := r.recoveryBase(pr)
	for _, t := range r.waitChain(suspect) {
		st := t.State()
		if (st == rtos.StateDone || st == rtos.StateKilled) && r.holdingCount(t) > 0 {
			r.Recoveries++
			r.traceFault(pr.Now(), "recover.reclaim", t.Name)
			pr.Delay(RecoveryOverheadCycles)
			r.reclaim(t)
			r.finish(pr, base)
			return
		}
	}
	victim := r.selectVictim(suspect)
	r.Recoveries++
	r.traceFault(pr.Now(), "recover.kill", victim.Name)
	r.k.Kill(victim)
	pr.Delay(RecoveryOverheadCycles)
	r.reclaim(victim)
	r.finish(pr, base)
	if r.policy == RestartOnce && victim.Restarts < 1 {
		if err := r.k.Restart(victim); err == nil {
			r.Restarted++
			r.traceFault(pr.Now(), "recover.restart", victim.Name)
			return
		}
	}
	r.Abandoned++
	r.traceFault(pr.Now(), "recover.abandon", victim.Name)
}

// finish books the recovery latency and acknowledges the faults it covered.
func (r *Recovery) finish(pr *sim.Proc, base sim.Cycles) {
	if r.plan != nil {
		r.plan.ackFired(pr.Now())
	}
	r.Latencies = append(r.Latencies, pr.Now()-base)
}

// RecoverDeadlocked is the detection-triggered entry point (DDU/DAU): it
// recovers against the highest-priority blocked task, whose wait-for chain
// covers the deadlock cycle.  Reports whether anything was blocked.
func (r *Recovery) RecoverDeadlocked(pr *sim.Proc) bool {
	names := r.k.Deadlocked()
	if len(names) == 0 {
		return false
	}
	sort.Strings(names)
	var suspect *rtos.Task
	for _, t := range r.k.Tasks() {
		for _, n := range names {
			if t.Name == n && (suspect == nil || t.CurPrio < suspect.CurPrio) {
				suspect = t
			}
		}
	}
	if suspect == nil {
		return false
	}
	r.Recover(pr, suspect)
	return true
}

// StopAll disarms every watchdog (end of campaign teardown).
func (r *Recovery) StopAll() {
	for _, wd := range r.watchdogs {
		wd.Stop()
	}
}

// MeanLatency returns the average fault-to-reclaimed latency in cycles.
func (r *Recovery) MeanLatency() float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum sim.Cycles
	for _, l := range r.Latencies {
		sum += l
	}
	return float64(sum) / float64(len(r.Latencies))
}

func (r *Recovery) traceFault(now sim.Cycles, name, verdict string) {
	if rec := r.k.S.Rec; rec != nil {
		rec.Record(trace.Event{
			Cycle: now, PE: -1, Proc: "recovery",
			Kind: trace.KindFault, Name: name, Arg: -1, Verdict: verdict,
		})
	}
}
