GO ?= go

.PHONY: tier1 build test vet lint lint-json race bench chaos

# tier1 is the merge gate: everything must build, vet and deltalint clean,
# and pass the test suite under the race detector.
tier1: vet lint build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's own static-analysis passes (lockorder, lockpair,
# claims, ceiling, memlife, determinism, tracekind — see DESIGN.md §8–§9 and
# `go run ./cmd/deltalint -help`).
lint:
	$(GO) run ./cmd/deltalint ./...

# lint-json is the CI artifact flavor: machine-readable findings plus the
# inferred resource-claims manifest.
lint-json:
	$(GO) run ./cmd/deltalint -json -claims claims-manifest.json ./... > deltalint.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# chaos is the fault-injection smoke: a short seeded campaign on each lock
# system.  Every seed must reach a classified terminal state (the binary
# exits nonzero on a panic or an unexplained leak).
chaos:
	$(GO) run ./cmd/deltasim -chaos -chaos-seeds 3 -chaos-system rtos5
	$(GO) run ./cmd/deltasim -chaos -chaos-seeds 3 -chaos-system rtos6
