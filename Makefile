GO ?= go

.PHONY: tier1 build test vet race bench

# tier1 is the merge gate: everything must build, vet clean, and pass the
# test suite under the race detector.
tier1: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
