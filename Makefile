GO ?= go

.PHONY: tier1 build test vet lint lint-json race bench bench-campaign bench-bitset bench-fuzz bench-fuzz-ipc chaos ipc-chaos fuzz fuzz-ipc

# tier1 is the merge gate: everything must build, vet and deltalint clean,
# and pass the test suite under the race detector.
tier1: vet lint build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's own static-analysis passes (lockorder, lockpair,
# claims, ceiling, memlife, determinism, tracekind, ipc, blocking, races —
# see DESIGN.md §8–§9, §12–§14, and `go run ./cmd/deltalint -list`), then
# enforces the wall-clock budget on a full-module lint of all ten passes
# (default 3400 ms; override with DELTALINT_BUDGET_MS on slower machines).
lint:
	$(GO) run ./cmd/deltalint ./...
	$(GO) test -run '^TestDeltalintTimeBudget$$' .

# lint-json is the CI artifact flavor: machine-readable findings plus the
# inferred resource-claims manifest, the static worst-case blocking
# bounds and the shared-location guard manifest.
lint-json:
	$(GO) run ./cmd/deltalint -json -claims claims-manifest.json -blocking deltalint-blocking.json -races deltalint-races.json ./... > deltalint.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-campaign measures the campaign engine — event-dispatch allocs/op and
# the sequential-vs-parallel wall-clock ratio for a 32-seed chaos sweep —
# and writes BENCH_campaign.json (uploaded as a CI artifact).
bench-campaign:
	$(GO) run ./cmd/deltasim -bench-campaign BENCH_campaign.json

# bench-bitset measures the word-parallel detection engine against the
# per-cell reference engine at 64x64, 1kx1k and 16kx16k — Reduce ns/op per
# engine, speedup, detect-path allocs/op (must be 0), and a verdict
# cross-check — and writes BENCH_bitset.json (uploaded as a CI artifact).
bench-bitset:
	$(GO) run ./cmd/deltasim -bench-bitset BENCH_bitset.json

# bench-fuzz runs the full-size generative sweep — 8 contention points x
# 125000 seeds = 1e6 scenarios, every one checked against the standing
# invariants including the engine differentials (bitset vs per-cell PDDA
# verdicts, cycle witnesses, Banker grant/refuse decisions) — and writes the
# deadlock-probability-vs-contention curve to BENCH_fuzz.json (uploaded as a
# CI artifact next to BENCH_campaign.json).
bench-fuzz:
	$(GO) run ./cmd/deltasim -fuzz -fuzz-seeds 125000 -fuzz-report BENCH_fuzz.json

# bench-fuzz-ipc writes the wedge-probability-vs-message-loss curve — 5 drop
# points x 12500 random message topologies, each seed re-checked for static
# flags ⊇ runtime quiescence core — to BENCH_ipc_fuzz.json (CI artifact).
bench-fuzz-ipc:
	$(GO) run ./cmd/deltasim -fuzz-ipc -fuzz-seeds 12500 -fuzz-report BENCH_ipc_fuzz.json

# fuzz is the generative-scenario smoke: a small seed budget under the race
# detector with a parallel pool, so the chunked streaming aggregation is
# exercised concurrently.  The binary exits nonzero if any sampled seed
# breaks an invariant (PDDA vs oracle, static ⊇ runtime, lint round-trip).
fuzz:
	$(GO) run -race ./cmd/deltasim -fuzz -fuzz-seeds 250 -parallel 4

# fuzz-ipc is the IPC-topology smoke: random lossy message topologies under
# the race detector, every seed re-checking that the statically flagged task
# set contains the runtime quiescence core (nonzero exit on any violation).
fuzz-ipc:
	$(GO) run -race ./cmd/deltasim -fuzz-ipc -fuzz-seeds 400 -parallel 4

# chaos is the fault-injection smoke: a short seeded campaign on each lock
# system, under the race detector with a parallel worker pool so the sharded
# campaign engine is exercised, not just the sequential path.  Every seed
# must reach a classified terminal state (the binary exits nonzero on a
# panic, a data race, or an unexplained leak).
chaos:
	$(GO) run -race ./cmd/deltasim -chaos -chaos-seeds 3 -parallel 4 -chaos-system rtos5
	$(GO) run -race ./cmd/deltasim -chaos -chaos-seeds 3 -parallel 4 -chaos-system rtos6

# ipc-chaos is the message-fault smoke: seeded drop/delay/duplicate/jam
# campaigns on the producer/consumer ring, under the race detector with a
# parallel pool.  The timeout-hardened ring must never wedge — the binary
# exits nonzero if the retry/backoff machinery fails its liveness
# obligation — while the blocking variant is allowed to wedge (that contrast
# is the point; see DESIGN.md §12).
ipc-chaos:
	$(GO) run -race ./cmd/deltasim -ipc-chaos -ipc-chaos-seeds 6 -parallel 4 -ipc-chaos-variant timeout
	$(GO) run -race ./cmd/deltasim -ipc-chaos -ipc-chaos-seeds 6 -parallel 4 -ipc-chaos-variant blocking
