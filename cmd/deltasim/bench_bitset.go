package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"deltartos/internal/det"
	"deltartos/internal/pdda"
	"deltartos/internal/rag"
)

// bitsetBenchPoint is one matrix geometry of the engine comparison.  The
// request density scales down with n so per-row request degree stays
// realistic at 16k (a process waits on a handful of resources, not on
// thousands), while the cell engine's per-pass cost — it scans every cell
// regardless of density — is unchanged by the sparsity.
type bitsetBenchPoint struct {
	label string
	m, n  int
	pReq  float64
}

var bitsetBenchPoints = []bitsetBenchPoint{
	{"64x64", 64, 64, 0.15},
	{"1kx1k", 1024, 1024, 0.02},
	{"16kx16k", 16384, 16384, 0.002},
}

// bitsetSizeReport is one geometry's row in BENCH_bitset.json.
type bitsetSizeReport struct {
	Label             string  `json:"label"`
	M                 int     `json:"m"`
	N                 int     `json:"n"`
	CellReduceNs      float64 `json:"cell_reduce_ns"`
	BitsetReduceNs    float64 `json:"bitset_reduce_ns"`
	ReduceSpeedup     float64 `json:"reduce_speedup"`
	DetectNs          float64 `json:"detect_ns"`
	DetectAllocsPerOp int64   `json:"detect_allocs_per_op"`
	VerdictsMatch     bool    `json:"verdicts_match"`
	Deadlock          bool    `json:"deadlock"`
}

// bitsetBenchReport is the full BENCH_bitset.json document.
type bitsetBenchReport struct {
	Seed  uint64             `json:"seed"`
	Sizes []bitsetSizeReport `json:"sizes"`
}

// runBenchBitset measures the word-parallel reduction engine against the
// per-cell reference engine at each geometry and writes BENCH_bitset.json.
// The acceptance gates: bitset beats cell by >=10x on the 1k Reduce and
// >=50x at 16k, and the steady-state detect path performs zero allocations.
func runBenchBitset(path string) error {
	rep := bitsetBenchReport{Seed: 1}
	for _, pt := range bitsetBenchPoints {
		start := time.Now()
		g := rag.Random(det.New(rep.Seed), pt.m, pt.n, 0.7, pt.pReq)
		pristine := g.Matrix()
		work := pristine.Clone()

		cell := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				work.CopyFrom(pristine)
				pdda.ReduceCells(work)
			}
		})

		var sc pdda.Scratch
		bitset := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pdda.ReduceInto(&sc, pristine)
			}
		})

		detect := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			pdda.DetectGraphInto(&sc, g) // warm before the timed runs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pdda.DetectGraphInto(&sc, g)
			}
		})

		fastDead, _ := pdda.DetectGraphInto(&sc, g)
		cellDead := pdda.DetectCells(pristine)

		row := bitsetSizeReport{
			Label:             pt.label,
			M:                 pt.m,
			N:                 pt.n,
			CellReduceNs:      float64(cell.NsPerOp()),
			BitsetReduceNs:    float64(bitset.NsPerOp()),
			DetectNs:          float64(detect.NsPerOp()),
			DetectAllocsPerOp: detect.AllocsPerOp(),
			VerdictsMatch:     fastDead == cellDead,
			Deadlock:          fastDead,
		}
		if row.BitsetReduceNs > 0 {
			row.ReduceSpeedup = row.CellReduceNs / row.BitsetReduceNs
		}
		rep.Sizes = append(rep.Sizes, row)
		fmt.Printf("%-8s cell %12.0f ns/op, bitset %10.0f ns/op, speedup %7.1fx, detect %d allocs/op, verdicts match: %v (%s)\n",
			pt.label, row.CellReduceNs, row.BitsetReduceNs, row.ReduceSpeedup,
			row.DetectAllocsPerOp, row.VerdictsMatch, time.Since(start).Round(time.Millisecond))
		if !row.VerdictsMatch {
			return fmt.Errorf("bench-bitset: %s: engine verdicts diverge (bitset=%v cell=%v)",
				pt.label, fastDead, cellDead)
		}
		if row.DetectAllocsPerOp != 0 {
			return fmt.Errorf("bench-bitset: %s: detect path allocated %d/op, want 0",
				pt.label, row.DetectAllocsPerOp)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
