// Command deltasim reproduces the paper's evaluation: it runs the registered
// experiment for every table and figure of Section 5 and prints the measured
// rows next to the published values.
//
// Usage:
//
//	deltasim -list
//	deltasim -exp table45
//	deltasim -all
//	deltasim -exp fig20 -vcd robot.vcd
package main

import (
	"flag"
	"fmt"
	"os"

	"deltartos/internal/app"
	"deltartos/internal/experiments"
	"deltartos/internal/rtos"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "run one experiment by id (e.g. table1, fig15)")
	all := flag.Bool("all", false, "run every experiment")
	vcdPath := flag.String("vcd", "", "with -exp fig20: also write the robot schedule waveform to this file")
	flag.Parse()

	if *vcdPath != "" && *exp == "fig20" {
		if err := writeRobotVCD(*vcdPath); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim:", err)
			os.Exit(1)
		}
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
	case *exp != "":
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "deltasim: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := runOne(e); err != nil {
			fmt.Fprintf(os.Stderr, "deltasim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	case *all:
		failed := 0
		for _, e := range experiments.All() {
			if err := runOne(e); err != nil {
				fmt.Fprintf(os.Stderr, "deltasim: %s: %v\n", e.ID, err)
				failed++
			}
			fmt.Println()
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeRobotVCD re-runs the RTOS6 robot scenario with tracing and dumps the
// Figure 20 schedule as a waveform.
func writeRobotVCD(path string) error {
	res := app.RunRobotScenario(app.NewRTOS6Locks, true)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rtos.WriteScheduleVCD(f, res.Trace, 4); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d trace events\n", path, len(res.Trace))
	return nil
}

func runOne(e experiments.Experiment) error {
	res, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(res))
	return nil
}
