// Command deltasim reproduces the paper's evaluation: it runs the registered
// experiment for every table and figure of Section 5 and prints the measured
// rows next to the published values.
//
// Usage:
//
//	deltasim -list
//	deltasim -exp table45
//	deltasim -all -parallel 8
//	deltasim -exp fig20 -vcd robot.vcd
//	deltasim -exp table45 -trace table45.json -metrics table45.metrics.json
//	deltasim -chaos -chaos-seeds 32 -parallel 8
//	deltasim -bench-campaign BENCH_campaign.json
//	deltasim -bench-bitset BENCH_bitset.json
//	deltasim -fuzz -fuzz-seeds 12500 -fuzz-report BENCH_fuzz.json -parallel 8
//	deltasim -fuzz-ipc -fuzz-seeds 2000 -fuzz-report BENCH_ipc_fuzz.json -parallel 8
//
// -parallel shards independent runs — the seeds of a -chaos campaign and
// the experiments of -all — across a worker pool (default: all cores).
// Results are merged in input order, so output, -metrics JSON and -trace
// exports are byte-identical to a -parallel 1 run.
//
// -trace writes a Chrome trace-event file (load it in chrome://tracing or
// Perfetto) with one process per simulation run and one thread per PE, plus
// dedicated tracks for the shared bus and for device/unit contexts.
// -metrics writes machine-readable per-experiment summaries: the rendered
// table rows plus the cycle-attributed counters the tracing layer collected.
// Both flags are valid for any -exp or -all selection.
package main

import (
	"flag"
	"fmt"
	"os"

	"deltartos/internal/campaign"
	"deltartos/internal/experiments"
	"deltartos/internal/fuzz"
	"deltartos/internal/rtos"
	"deltartos/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "run one experiment by id (e.g. table1, fig15)")
	all := flag.Bool("all", false, "run every experiment")
	parallel := flag.Int("parallel", campaign.DefaultWorkers(),
		"worker count for seed sweeps and -all (1 = sequential; output is identical either way)")
	vcdPath := flag.String("vcd", "", "with -exp fig20: also write the robot schedule waveform to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file covering every simulation run")
	metricsPath := flag.String("metrics", "", "write per-experiment JSON summaries (table rows + trace counters)")
	chaos := flag.Bool("chaos", false, "run a fault-injection campaign over the chaos workload")
	chaosSeeds := flag.Int("chaos-seeds", 5, "with -chaos: number of seeds to sweep")
	chaosSeed := flag.Uint64("chaos-seed", 1, "with -chaos: first seed (run i uses seed+i)")
	chaosFaults := flag.Int("chaos-faults", 6, "with -chaos: faults injected per run")
	chaosSystem := flag.String("chaos-system", "rtos5", "with -chaos: lock system under test (rtos5 or rtos6)")
	ipcChaos := flag.Bool("ipc-chaos", false, "run a message-fault campaign over the producer/consumer ring")
	ipcChaosSeeds := flag.Int("ipc-chaos-seeds", 8, "with -ipc-chaos: number of seeds to sweep")
	ipcChaosSeed := flag.Uint64("ipc-chaos-seed", 1, "with -ipc-chaos: first seed (run i uses seed+i)")
	ipcChaosFaults := flag.Int("ipc-chaos-faults", 6, "with -ipc-chaos: message faults injected per run")
	ipcChaosVariant := flag.String("ipc-chaos-variant", "timeout", "with -ipc-chaos: ring variant under test (blocking or timeout)")
	benchPath := flag.String("bench-campaign", "",
		"measure the campaign engine (sequential vs parallel wall-clock, dispatch allocs/op), write JSON to this file, and exit")
	benchBitsetPath := flag.String("bench-bitset", "",
		"measure the word-parallel detection engine against the per-cell reference at 64x64/1k/16k, write JSON to this file, and exit")
	fuzzRun := flag.Bool("fuzz", false, "run the generative scenario sweep (deadlock probability vs contention)")
	fuzzSeeds := flag.Int("fuzz-seeds", 12500, "with -fuzz: seeds per parameter point (8 points, so the default sweeps 1e5 seeds)")
	fuzzBaseSeed := flag.Uint64("fuzz-base-seed", 1, "with -fuzz: first seed of the sweep")
	fuzzReport := flag.String("fuzz-report", "", "with -fuzz: write the machine-readable sweep report (BENCH_fuzz.json) to this file")
	fuzzIPC := flag.Bool("fuzz-ipc", false, "run the generative IPC-topology sweep (wedge probability vs message loss); reuses -fuzz-seeds, -fuzz-base-seed and -fuzz-report")
	flag.Parse()

	if *vcdPath != "" && *exp != "fig20" {
		fmt.Fprintln(os.Stderr, "deltasim: -vcd is only valid together with -exp fig20")
		os.Exit(2)
	}

	if *benchPath != "" {
		if err := runBenchCampaign(*benchPath, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim: bench-campaign:", err)
			os.Exit(1)
		}
		return
	}

	if *benchBitsetPath != "" {
		if err := runBenchBitset(*benchBitsetPath); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim: bench-bitset:", err)
			os.Exit(1)
		}
		return
	}

	var session *trace.Session
	if *tracePath != "" || *metricsPath != "" {
		session = trace.NewSession()
	}

	var summaries []experiments.Summary
	collect := *metricsPath != ""

	switch {
	case *fuzzIPC:
		if err := runIPCFuzz(*fuzzSeeds, *fuzzBaseSeed, *fuzzReport, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim: fuzz-ipc:", err)
			os.Exit(1)
		}
	case *fuzzRun:
		if err := runFuzz(*fuzzSeeds, *fuzzBaseSeed, *fuzzReport, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim: fuzz:", err)
			os.Exit(1)
		}
	case *ipcChaos:
		cfg := experiments.DefaultIPCChaosConfig()
		cfg.Seeds = *ipcChaosSeeds
		cfg.BaseSeed = *ipcChaosSeed
		cfg.Faults = *ipcChaosFaults
		cfg.Variant = *ipcChaosVariant
		rc := &experiments.RunCtx{Parallel: *parallel, Session: session, Label: "ipc-chaos"}
		if err := runIPCChaos(cfg, rc, collect, &summaries); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim: ipc-chaos:", err)
			os.Exit(1)
		}
	case *chaos:
		cfg := experiments.DefaultChaosConfig()
		cfg.Seeds = *chaosSeeds
		cfg.BaseSeed = *chaosSeed
		cfg.Faults = *chaosFaults
		cfg.System = *chaosSystem
		rc := &experiments.RunCtx{Parallel: *parallel, Session: session, Label: "chaos"}
		if err := runChaos(cfg, rc, collect, &summaries); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim: chaos:", err)
			os.Exit(1)
		}
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
	case *exp != "":
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "deltasim: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		rc := &experiments.RunCtx{Parallel: *parallel, Session: session, Label: e.ID}
		var err error
		if *vcdPath != "" {
			err = runFig20WithVCD(*vcdPath, rc, collect, &summaries)
		} else {
			err = runOne(e, rc, collect, &summaries)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "deltasim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	case *all:
		failed := 0
		for _, out := range experiments.RunMatrix(experiments.All(), *parallel, session, collect) {
			if out.Err != nil {
				fmt.Fprintf(os.Stderr, "deltasim: %s: %v\n", out.ID, out.Err)
				failed++
			} else {
				fmt.Print(out.Rendered)
				if collect {
					summaries = append(summaries, out.Summary)
				}
			}
			fmt.Println()
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath, session); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, summaries); err != nil {
			fmt.Fprintln(os.Stderr, "deltasim:", err)
			os.Exit(1)
		}
	}
}

// runOne executes an experiment, prints its table, and (when requested)
// captures the counters its simulations produced.
func runOne(e experiments.Experiment, rc *experiments.RunCtx, collect bool, summaries *[]experiments.Summary) error {
	res, err := e.Run(rc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(res))
	if collect {
		*summaries = append(*summaries, experiments.NewSummary(res, rc.Counters()))
	}
	return nil
}

// runChaos runs a configured fault-injection campaign.  Its summary merges
// the per-run recovery counters with whatever the tracing layer collected.
func runChaos(cfg experiments.ChaosConfig, rc *experiments.RunCtx, collect bool, summaries *[]experiments.Summary) error {
	res, runs, err := experiments.RunChaosCampaign(cfg, rc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(res))
	if collect {
		counters := experiments.ChaosCounters(runs)
		for k, v := range rc.Counters() {
			counters[k] += v
		}
		*summaries = append(*summaries, experiments.NewSummary(res, counters))
	}
	// An unexplained leak means recovery failed its reclaim obligation —
	// that is a bug in the stack, not a fault outcome, so the campaign
	// itself fails (this is what `make chaos` gates on in CI).
	for _, run := range runs {
		if run.UnexplainedLeaks > 0 {
			return fmt.Errorf("seed %d: %d allocation block(s) recovery failed to reclaim", run.Seed, run.UnexplainedLeaks)
		}
	}
	return nil
}

// runIPCChaos runs a configured message-fault campaign.  A wedged run on
// the timeout-hardened variant means the retry machinery failed its
// liveness obligation — that is a bug, not a fault outcome, so the campaign
// itself fails (this is what `make ipc-chaos` gates on in CI).
func runIPCChaos(cfg experiments.IPCChaosConfig, rc *experiments.RunCtx, collect bool, summaries *[]experiments.Summary) error {
	res, runs, err := experiments.RunIPCChaosCampaign(cfg, rc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(res))
	if collect {
		counters := experiments.IPCChaosCounters(runs)
		for k, v := range rc.Counters() {
			counters[k] += v
		}
		*summaries = append(*summaries, experiments.NewSummary(res, counters))
	}
	if cfg.Variant == "timeout" {
		for _, run := range runs {
			if run.Outcome == "wedged" {
				return fmt.Errorf("seed %d: timeout variant wedged (%s)", run.Seed, run.Diagnosis)
			}
		}
	}
	return nil
}

// runFuzz sweeps the generative scenario engine across the default
// contention curve and prints one line per parameter point.  The report is
// a pure function of (seeds, base seed) — worker count never changes a
// byte — so -fuzz-report output can be diffed across -parallel settings.
func runFuzz(seedsPerPoint int, baseSeed uint64, reportPath string, parallel int) error {
	sw := fuzz.DefaultSweep(seedsPerPoint, baseSeed)
	rc := &experiments.RunCtx{Parallel: parallel}
	rep, err := experiments.RunFuzzSweep(sw, rc)
	if err != nil {
		return err
	}
	fmt.Printf("fuzz sweep: %d points x %d seeds, base seed %d\n",
		len(rep.Points), rep.Config.SeedsPerPoint, rep.Config.BaseSeed)
	fmt.Printf("%-6s %10s %12s %15s %12s %8s\n",
		"point", "contention", "P(deadlock)", "P(static cyc)", "det.latency", "wedged")
	for _, p := range rep.Points {
		fmt.Printf("%-6s %10.2f %12.4f %15.4f %12.1f %8d\n",
			p.Label, p.Contention, p.DeadlockProbability, p.StaticCycleProbability,
			p.DetectionLatencyMean, p.Wedged)
	}
	if reportPath != "" {
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d parameter points\n", reportPath, len(rep.Points))
	}
	return nil
}

// runIPCFuzz sweeps random message topologies across the default drop-rate
// curve and prints one line per parameter point.  Every seed re-checks that
// the statically flagged task set contains the runtime quiescence core; a
// single violation fails the sweep with a witness.
func runIPCFuzz(seedsPerPoint int, baseSeed uint64, reportPath string, parallel int) error {
	sw := fuzz.DefaultIPCSweep(seedsPerPoint, baseSeed)
	rc := &experiments.RunCtx{Parallel: parallel}
	rep, err := experiments.RunIPCFuzzSweep(sw, rc)
	if err != nil {
		return err
	}
	fmt.Printf("ipc fuzz sweep: %d points x %d seeds, base seed %d\n",
		len(rep.Points), rep.Config.SeedsPerPoint, rep.Config.BaseSeed)
	fmt.Printf("%-10s %10s %15s %10s %13s %9s %10s\n",
		"point", "P(wedge)", "P(static flag)", "mean core", "mean flagged", "dropped", "completed")
	for _, p := range rep.Points {
		fmt.Printf("%-10s %10.4f %15.4f %10.2f %13.2f %9d %10d\n",
			p.Label, p.WedgeProbability, p.StaticFlagProbability,
			p.MeanCoreTasks, p.MeanFlaggedTasks, p.DroppedSends, p.Completed)
	}
	if reportPath != "" {
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d parameter points\n", reportPath, len(rep.Points))
	}
	return nil
}

// runFig20WithVCD runs the robot scenario ONCE, prints the Figure 20 table,
// and dumps the schedule waveform from the same run.
func runFig20WithVCD(path string, rc *experiments.RunCtx, collect bool, summaries *[]experiments.Summary) error {
	res, tr, err := experiments.RunFig20(rc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(res))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rtos.WriteScheduleVCD(f, tr, 4); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d trace events\n", path, len(tr))
	if collect {
		*summaries = append(*summaries, experiments.NewSummary(res, rc.Counters()))
	}
	return nil
}

func writeTrace(path string, session *trace.Session) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := session.WriteChromeTrace(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events from %d runs\n", path, session.Events(), session.Len())
	return nil
}

func writeMetrics(path string, summaries []experiments.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteSummaries(f, summaries); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d experiment summaries\n", path, len(summaries))
	return nil
}
