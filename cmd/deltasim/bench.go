package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"deltartos/internal/campaign"
	"deltartos/internal/experiments"
	"deltartos/internal/sim"
)

// benchSeeds is the campaign size the acceptance numbers are quoted for: a
// 32-seed sweep is large enough to amortise pool startup and small enough to
// finish in seconds on one core.
const benchSeeds = 32

// benchReport is the JSON document `-bench-campaign` writes.  Durations are
// nanoseconds; Speedup is sequential/parallel wall-clock.
type benchReport struct {
	GoMaxProcs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	Seeds      int `json:"seeds"`
	Dispatch   struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	} `json:"dispatch"`
	Campaign struct {
		SequentialNs int64   `json:"sequential_ns"`
		ParallelNs   int64   `json:"parallel_ns"`
		Speedup      float64 `json:"speedup"`
		OutputsMatch bool    `json:"outputs_match"`
	} `json:"campaign"`
}

// runBenchCampaign measures the two headline numbers of the campaign-engine
// work — event-dispatch allocation cost and parallel seed-sweep speedup —
// and writes them to path as JSON (the CI artifact BENCH_campaign.json).
func runBenchCampaign(path string, workers int) error {
	if workers <= 1 {
		workers = campaign.DefaultWorkers()
	}
	var rep benchReport
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Workers = workers
	rep.Seeds = benchSeeds

	// Event dispatch: one proc scheduling back-to-back timer events.  The
	// inlined event heap must not allocate per operation — steady-state
	// allocs/op is the regression gate (see BenchmarkSimDispatch).
	dispatch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		s := sim.New()
		s.Spawn("bench", 0, func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				p.Delay(1)
			}
		})
		b.ResetTimer()
		s.Run()
	})
	rep.Dispatch.NsPerOp = float64(dispatch.NsPerOp())
	rep.Dispatch.AllocsPerOp = dispatch.AllocsPerOp()
	rep.Dispatch.BytesPerOp = dispatch.AllocedBytesPerOp()

	cfg := experiments.DefaultChaosConfig()
	cfg.Seeds = benchSeeds

	seqOut, seqNs, err := timeCampaign(cfg, 1)
	if err != nil {
		return fmt.Errorf("sequential campaign: %w", err)
	}
	parOut, parNs, err := timeCampaign(cfg, workers)
	if err != nil {
		return fmt.Errorf("parallel campaign: %w", err)
	}
	rep.Campaign.SequentialNs = seqNs
	rep.Campaign.ParallelNs = parNs
	if parNs > 0 {
		rep.Campaign.Speedup = float64(seqNs) / float64(parNs)
	}
	rep.Campaign.OutputsMatch = seqOut == parOut

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("dispatch: %.1f ns/op, %d allocs/op\n", rep.Dispatch.NsPerOp, rep.Dispatch.AllocsPerOp)
	fmt.Printf("campaign (%d seeds): sequential %s, parallel(%d) %s, speedup %.2fx, outputs match: %v\n",
		benchSeeds, time.Duration(seqNs), workers, time.Duration(parNs),
		rep.Campaign.Speedup, rep.Campaign.OutputsMatch)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// timeCampaign runs one full chaos campaign and returns its rendered table
// plus wall-clock duration.  The rendered output doubles as the
// byte-identity witness between worker counts.
func timeCampaign(cfg experiments.ChaosConfig, workers int) (string, int64, error) {
	rc := &experiments.RunCtx{Parallel: workers, Label: "bench"}
	start := time.Now()
	res, _, err := experiments.RunChaosCampaign(cfg, rc)
	elapsed := time.Since(start).Nanoseconds()
	if err != nil {
		return "", 0, err
	}
	return experiments.Render(res), elapsed, nil
}
