// Command deltalint is the project's static-analysis driver.  It runs the
// four passes of internal/analysis/passes — lockorder, lockpair,
// determinism and tracekind — over the module and prints go-vet-style
// diagnostics:
//
//	file:line:col: [pass] message
//
// Usage:
//
//	go run ./cmd/deltalint ./...          # whole module (what `make lint` does)
//	go run ./cmd/deltalint ./internal/app # one package
//	go run ./cmd/deltalint -help          # pass documentation
//
// Exit status is 1 when any diagnostic is reported, 2 on load errors.
// See DESIGN.md §8 for how these passes split deadlock detection between
// compile time (this tool) and run time (the DDU/PDDA models).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deltartos/internal/analysis/framework"
	"deltartos/internal/analysis/passes"
)

func main() {
	help := flag.Bool("help", false, "print pass documentation and exit")
	only := flag.String("only", "", "comma-separated subset of passes to run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deltalint [-only pass,pass] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := passes.All()
	if *help {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*passes.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "deltalint: no passes match -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := framework.LoadModule(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
		os.Exit(2)
	}
	loadFailed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "deltalint: %s: %v\n", pkg.PkgPath, terr)
			loadFailed = true
		}
	}
	if loadFailed {
		os.Exit(2)
	}

	diags, err := framework.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "deltalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
