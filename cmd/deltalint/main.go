// Command deltalint is the project's static-analysis driver.  It runs the
// passes of internal/analysis/passes — lockorder, lockpair, claims, ceiling,
// memlife, determinism, tracekind, ipc, blocking and races — over the module
// and prints go-vet-style diagnostics:
//
//	file:line:col: [pass] message
//
// Usage:
//
//	go run ./cmd/deltalint ./...           # whole module (what `make lint` does)
//	go run ./cmd/deltalint ./internal/app  # one package
//	go run ./cmd/deltalint -run lockorder,ipc ./...   # a subset of passes
//	go run ./cmd/deltalint -json ./...     # machine-readable findings (CI artifact)
//	go run ./cmd/deltalint -claims claims.json ./...  # write the inferred claims manifest
//	go run ./cmd/deltalint -blocking blocking.json ./...  # write worst-case blocking bounds
//	go run ./cmd/deltalint -races races.json ./...    # write the inferred guard manifest
//	go run ./cmd/deltalint -list           # one line per pass
//	go run ./cmd/deltalint -help           # pass documentation
//
// Exit status is 1 when any diagnostic is reported, 2 on load errors.
// See DESIGN.md §8–§9 for how these passes split deadlock analysis between
// compile time (this tool) and run time (the DDU/PDDA/DAU models).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"deltartos/internal/analysis/framework"
	"deltartos/internal/analysis/passes"
	"deltartos/internal/claims"
	"deltartos/internal/races"
)

// finding is the JSON shape of one diagnostic.  The list is sorted by
// (file, line, col, pass, message) so output is stable across runs.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() {
	help := flag.Bool("help", false, "print pass documentation and exit")
	list := flag.Bool("list", false, "print one name-plus-synopsis line per pass and exit")
	run := flag.String("run", "", "comma-separated subset of passes to run")
	only := flag.String("only", "", "alias for -run (kept for compatibility)")
	jsonOut := flag.Bool("json", false, "emit findings as a sorted JSON array on stdout")
	claimsOut := flag.String("claims", "", "write the inferred resource-claims manifest to this file")
	blockingOut := flag.String("blocking", "", "write the static worst-case blocking bounds to this file as JSON")
	racesOut := flag.String("races", "", "write the inferred shared-location guard manifest to this file as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deltalint [-run pass,pass] [-json] [-claims file] [-blocking file] [-races file] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := passes.All()
	if *help {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	if *list {
		for _, line := range passes.Summaries() {
			fmt.Println(line)
		}
		return
	}
	sel := *run
	if sel == "" {
		sel = *only
	} else if *only != "" && *only != *run {
		fmt.Fprintf(os.Stderr, "deltalint: -run and -only disagree; pass just one\n")
		os.Exit(2)
	}
	if sel != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(sel, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*passes.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			var unknown []string
			for name := range want {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "deltalint: unknown pass(es) in -run: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		if len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "deltalint: no passes match -run=%s\n", sel)
			os.Exit(2)
		}
		analyzers = picked
	}
	if *blockingOut != "" {
		// The bounds come from the blocking pass; make sure it is selected.
		found := false
		for _, a := range analyzers {
			if a.Name == "blocking" {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "deltalint: -blocking requires the blocking pass (add it to -run)\n")
			os.Exit(2)
		}
	}
	if *racesOut != "" {
		// The guard manifest comes from the races pass; make sure it is selected.
		found := false
		for _, a := range analyzers {
			if a.Name == "races" {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "deltalint: -races requires the races pass (add it to -run)\n")
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := framework.LoadModule(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
		os.Exit(2)
	}
	loadFailed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "deltalint: %s: %v\n", pkg.PkgPath, terr)
			loadFailed = true
		}
	}
	if loadFailed {
		os.Exit(2)
	}

	// Drive each analyzer ourselves (rather than framework.Run) so the
	// claims pass's manifest results and the blocking pass's bounds can be
	// merged across packages.
	var findings []finding
	manifest := &claims.Manifest{Module: "deltartos"}
	blocking := &passes.BlockingResult{Bounds: []passes.BlockingBound{}}
	guards := &races.Manifest{Module: "deltartos", Scenarios: []races.Scenario{}}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, res, err := framework.RunAnalyzer(pkg, a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File:    pos.Filename,
					Line:    pos.Line,
					Col:     pos.Column,
					Pass:    d.Analyzer,
					Message: d.Message,
				})
			}
			if m, ok := res.(*claims.Manifest); ok && m != nil {
				manifest.Scenarios = append(manifest.Scenarios, m.Scenarios...)
			}
			if br, ok := res.(*passes.BlockingResult); ok && br != nil {
				blocking.Bounds = append(blocking.Bounds, br.Bounds...)
			}
			if gm, ok := res.(*races.Manifest); ok && gm != nil {
				guards.Scenarios = append(guards.Scenarios, gm.Scenarios...)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})

	if *claimsOut != "" {
		data, err := manifest.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "deltalint: encode claims manifest: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*claimsOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
			os.Exit(2)
		}
	}

	if *blockingOut != "" {
		sort.Slice(blocking.Bounds, func(i, j int) bool {
			a, b := blocking.Bounds[i], blocking.Bounds[j]
			if a.Scenario != b.Scenario {
				return a.Scenario < b.Scenario
			}
			return a.Task < b.Task
		})
		data, err := json.MarshalIndent(blocking, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "deltalint: encode blocking bounds: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*blockingOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
			os.Exit(2)
		}
	}

	if *racesOut != "" {
		data, err := guards.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "deltalint: encode guard manifest: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*racesOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{} // encode as [] rather than null
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "deltalint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Pass, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "deltalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
