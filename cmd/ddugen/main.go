// Command ddugen generates a Deadlock Detection Unit or Deadlock Avoidance
// Unit of a given size and reports its synthesis summary (the Table 1 /
// Table 2 rows for arbitrary sizes).
//
// Usage:
//
//	ddugen -procs 5 -resources 5              # synthesis summary
//	ddugen -procs 5 -resources 5 -verilog     # emit the Verilog
//	ddugen -procs 5 -resources 5 -dau         # DAU instead of DDU
//	ddugen -procs 5 -resources 5 -vcd ddu.vcd # waveform of a detection run
package main

import (
	"flag"
	"fmt"
	"os"

	"deltartos/internal/dau"
	"deltartos/internal/ddu"
	"deltartos/internal/rag"
)

func main() {
	procs := flag.Int("procs", 5, "number of processes (matrix columns)")
	resources := flag.Int("resources", 5, "number of resources (matrix rows)")
	emit := flag.Bool("verilog", false, "emit generated Verilog to stdout")
	wantDAU := flag.Bool("dau", false, "generate the DAU (DDU + avoidance FSM)")
	vcdPath := flag.String("vcd", "", "write a VCD waveform of a worst-case detection run to this file")
	flag.Parse()

	if *vcdPath != "" {
		cfg := ddu.Config{Procs: *procs, Resources: *resources}
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		res, err := ddu.DumpDetectionVCD(cfg, rag.Chain(*resources, *procs).Matrix(), f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: worst-case chain detection, %d iterations, %d steps, deadlock=%v\n",
			*vcdPath, res.Iterations, res.Steps, res.Deadlock)
		return
	}

	if *wantDAU {
		cfg := dau.Config{Procs: *procs, Resources: *resources}
		if *emit {
			f, err := dau.Generate(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Print(f.Emit())
			return
		}
		sr, err := dau.Synthesize(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("DAU %dx%d: %d lines of Verilog, %d NAND2-equivalent gates\n",
			*procs, *resources, sr.TotalLines, sr.TotalArea)
		fmt.Printf("  DDU part:    %d lines, %d gates, %d worst-case detection steps\n",
			sr.DDULines, sr.DDUArea, sr.DDUSteps)
		fmt.Printf("  others:      %d lines, %d gates\n", sr.OtherLines, sr.OtherArea)
		fmt.Printf("  worst-case avoidance steps: %d\n", sr.AvoidanceSteps)
		return
	}

	cfg := ddu.Config{Procs: *procs, Resources: *resources}
	if *emit {
		f, err := ddu.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(f.Emit())
		return
	}
	sr, err := ddu.Synthesize(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("DDU %dx%d: %d lines of Verilog, %d NAND2-equivalent gates, %d worst-case iterations\n",
		*procs, *resources, sr.VerilogLines, sr.AreaGates, sr.WorstSteps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddugen:", err)
	os.Exit(1)
}
