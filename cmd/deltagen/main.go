// Command deltagen is the δ framework generator front end (the command-line
// equivalent of the GUI of Figure 3): it takes a configuration — either one
// of the Table 3 presets or a JSON file — and generates the Verilog top
// file, the selected hardware RTOS component files and the Atalanta software
// configuration header into an output directory.
//
// Usage:
//
//	deltagen -preset RTOS6 -out out/
//	deltagen -config myconfig.json -out out/
//	deltagen -preset RTOS4 -print
//	deltagen -scenario-seed 42 -scenario-resources 8
//
// -scenario-seed switches to the fuzz front end: instead of Verilog it
// emits one generated lock-acquisition scenario as a self-contained Go
// package (the exact source the fuzz sweep round-trips through deltalint),
// for reproducing a seed a sweep flagged.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"deltartos/internal/delta"
	"deltartos/internal/fuzz"
)

func main() {
	preset := flag.String("preset", "", "Table 3 preset name (RTOS1..RTOS7)")
	config := flag.String("config", "", "JSON configuration file")
	out := flag.String("out", "", "output directory for generated files")
	print := flag.Bool("print", false, "print the top file to stdout instead of writing files")
	scenSeed := flag.Uint64("scenario-seed", 0, "emit the fuzz scenario for this seed as Go source to stdout (0 = off)")
	scenTasks := flag.Int("scenario-tasks", 0, "with -scenario-seed: override the task count")
	scenRes := flag.Int("scenario-resources", 0, "with -scenario-seed: override the resource count")
	flag.Parse()

	if *scenSeed != 0 {
		if err := emitScenario(*scenSeed, *scenTasks, *scenRes); err != nil {
			fmt.Fprintln(os.Stderr, "deltagen:", err)
			os.Exit(1)
		}
		return
	}

	cfg, err := loadConfig(*preset, *config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deltagen:", err)
		os.Exit(2)
	}
	gen, err := delta.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deltagen:", err)
		os.Exit(1)
	}
	if *print || *out == "" {
		fmt.Print(gen.Top.Emit())
		return
	}
	if err := writeFiles(cfg, gen, *out); err != nil {
		fmt.Fprintln(os.Stderr, "deltagen:", err)
		os.Exit(1)
	}
}

// emitScenario regenerates one fuzz scenario and prints it: the compact
// program listing as a comment block on stderr-free stdout would garble the
// Go source, so the listing rides along as comments, followed by the same
// EmitGo source the sweep's deltalint round-trip analyzes.
func emitScenario(seed uint64, tasks, resources int) error {
	cfg := fuzz.DefaultGenConfig()
	if tasks > 0 {
		cfg.Tasks = tasks
	}
	if resources > 0 {
		cfg.Resources = resources
	}
	sc, err := fuzz.Generate(seed, cfg)
	if err != nil {
		return err
	}
	st := fuzz.Derive(sc)
	fmt.Printf("// static lock-order cycle: %v, edges: %d\n//\n", st.HasCycle(), st.Edges())
	fmt.Print(fuzz.EmitGo(sc, st))
	return nil
}

func loadConfig(preset, config string) (*delta.Config, error) {
	switch {
	case preset != "" && config != "":
		return nil, fmt.Errorf("use -preset or -config, not both")
	case preset != "":
		c, err := delta.Preset(preset)
		if err != nil {
			return nil, err
		}
		return &c, nil
	case config != "":
		data, err := os.ReadFile(config)
		if err != nil {
			return nil, err
		}
		return delta.Load(data)
	}
	return nil, fmt.Errorf("need -preset or -config")
}

func writeFiles(cfg *delta.Config, gen *delta.GeneratedSystem, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	if err := write("Top.v", gen.Top.Emit()); err != nil {
		return err
	}
	for comp, f := range gen.Components {
		if err := write(string(comp)+".v", f.Emit()); err != nil {
			return err
		}
	}
	if err := write("atalanta_cfg.h", gen.RTOSHeader); err != nil {
		return err
	}
	data, err := cfg.Save()
	if err != nil {
		return err
	}
	return write("config.json", string(data)+"\n")
}
