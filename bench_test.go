package deltartos

// One benchmark per table and figure of the paper's evaluation (Section 5),
// plus the ablation benches called out in DESIGN.md.  Each benchmark reports
// the headline simulated-cycle metrics via b.ReportMetric so `go test
// -bench=.` regenerates the paper's rows.

import (
	"os"
	"strconv"
	"testing"
	"time"

	"deltartos/internal/analysis/framework"
	"deltartos/internal/analysis/passes"
	"deltartos/internal/app"
	"deltartos/internal/campaign"
	"deltartos/internal/daa"
	"deltartos/internal/dau"
	"deltartos/internal/ddu"
	"deltartos/internal/delta"
	"deltartos/internal/det"
	"deltartos/internal/experiments"
	"deltartos/internal/pdda"
	"deltartos/internal/rag"
	"deltartos/internal/sim"
	"deltartos/internal/socdmmu"
)

// ---- Table 1: DDU synthesis ----

func BenchmarkTable1DDUSynthesis(b *testing.B) {
	for _, size := range []struct{ p, r int }{{2, 3}, {5, 5}, {7, 7}, {10, 10}, {50, 50}} {
		size := size
		b.Run(sizeName(size.p, size.r), func(b *testing.B) {
			var sr ddu.SynthResult
			var err error
			for i := 0; i < b.N; i++ {
				sr, err = ddu.Synthesize(ddu.Config{Procs: size.p, Resources: size.r})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sr.AreaGates), "gates")
			b.ReportMetric(float64(sr.VerilogLines), "verilog-lines")
			b.ReportMetric(float64(sr.WorstSteps), "worst-steps")
		})
	}
}

// ---- Table 2 / Figure 14: DAU synthesis ----

func BenchmarkTable2DAUSynthesis(b *testing.B) {
	var sr dau.SynthResult
	var err error
	for i := 0; i < b.N; i++ {
		sr, err = dau.Synthesize(dau.Config{Procs: 5, Resources: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sr.TotalArea), "gates")
	b.ReportMetric(float64(sr.AvoidanceSteps), "worst-steps")
}

// ---- Table 3 / Figure 7: framework generation ----

func BenchmarkTable3PresetGeneration(b *testing.B) {
	for _, name := range delta.PresetNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := delta.Preset(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := delta.Generate(&c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Tables 4-5 / Figure 15: deadlock detection scenario ----

func BenchmarkTable5Detection(b *testing.B) {
	b.Run("DDU", func(b *testing.B) {
		var res app.DetectionResult
		for i := 0; i < b.N; i++ {
			res = app.RunDetectionScenario(func() app.Detector {
				d, err := app.NewHardwareDetector(5, 5)
				if err != nil {
					b.Fatal(err)
				}
				return d
			})
		}
		report(b, res.DeadlockFound, float64(res.AppCycles), res.AvgDetectCycles)
	})
	b.Run("PDDA-software", func(b *testing.B) {
		var res app.DetectionResult
		for i := 0; i < b.N; i++ {
			res = app.RunDetectionScenario(func() app.Detector { return &app.SoftwareDetector{} })
		}
		report(b, res.DeadlockFound, float64(res.AppCycles), res.AvgDetectCycles)
	})
}

// ---- Tables 6-7 / Figure 16: grant deadlock avoidance ----

func BenchmarkTable7GdlAvoidance(b *testing.B) {
	b.Run("DAU", func(b *testing.B) {
		var res app.AvoidanceResult
		for i := 0; i < b.N; i++ {
			res = app.RunGrantDeadlockScenario(hwBackend(b))
		}
		report(b, res.GDlAvoided, float64(res.AppCycles), res.AvgAlgCycles)
	})
	b.Run("DAA-software", func(b *testing.B) {
		var res app.AvoidanceResult
		for i := 0; i < b.N; i++ {
			res = app.RunGrantDeadlockScenario(swBackend(b))
		}
		report(b, res.GDlAvoided, float64(res.AppCycles), res.AvgAlgCycles)
	})
}

// ---- Tables 8-9 / Figure 17: request deadlock avoidance ----

func BenchmarkTable9RdlAvoidance(b *testing.B) {
	b.Run("DAU", func(b *testing.B) {
		var res app.AvoidanceResult
		for i := 0; i < b.N; i++ {
			res = app.RunRequestDeadlockScenario(hwBackend(b))
		}
		report(b, res.RDlAvoided, float64(res.AppCycles), res.AvgAlgCycles)
	})
	b.Run("DAA-software", func(b *testing.B) {
		var res app.AvoidanceResult
		for i := 0; i < b.N; i++ {
			res = app.RunRequestDeadlockScenario(swBackend(b))
		}
		report(b, res.RDlAvoided, float64(res.AppCycles), res.AvgAlgCycles)
	})
}

// ---- Table 10 / Figures 18-20: robot application ----

func BenchmarkTable10Robot(b *testing.B) {
	b.Run("RTOS5-software", func(b *testing.B) {
		var res app.RobotResult
		for i := 0; i < b.N; i++ {
			res = app.RunRobotScenario(app.NewRTOS5Locks, false)
		}
		b.ReportMetric(float64(res.OverallCycles), "sim-cycles")
		b.ReportMetric(res.LockLatency, "lock-latency")
		b.ReportMetric(res.LockDelay, "lock-delay")
	})
	b.Run("RTOS6-SoCLC", func(b *testing.B) {
		var res app.RobotResult
		for i := 0; i < b.N; i++ {
			res = app.RunRobotScenario(app.NewRTOS6Locks, false)
		}
		b.ReportMetric(float64(res.OverallCycles), "sim-cycles")
		b.ReportMetric(res.LockLatency, "lock-latency")
		b.ReportMetric(res.LockDelay, "lock-delay")
	})
}

// ---- Tables 11-12: SPLASH-2 kernels ----

func BenchmarkTable11Splash(b *testing.B) {
	splashBench(b, "glibc", app.NewGlibcAllocator)
}

func BenchmarkTable12Splash(b *testing.B) {
	splashBench(b, "SoCDMMU", app.NewSoCDMMUAllocator)
}

func splashBench(b *testing.B, tag string, mk func() socdmmu.Allocator) {
	kernels := []struct {
		name string
		run  func(func() socdmmu.Allocator, ...app.Option) app.SplashResult
	}{
		{"LU", app.RunLU}, {"FFT", app.RunFFT}, {"RADIX", app.RunRadix},
	}
	for _, k := range kernels {
		k := k
		b.Run(k.name+"-"+tag, func(b *testing.B) {
			var res app.SplashResult
			for i := 0; i < b.N; i++ {
				res = k.run(mk)
			}
			if !res.Verified {
				b.Fatalf("%s output verification failed", k.name)
			}
			b.ReportMetric(float64(res.TotalCycles), "sim-cycles")
			b.ReportMetric(float64(res.MgmtCycles), "mgmt-cycles")
			b.ReportMetric(res.MgmtPercent, "mgmt-%")
		})
	}
}

// ---- Extension: parallel RADIX scaling (ext-parallel) ----

func BenchmarkExtParallelRadix(b *testing.B) {
	for _, pes := range []int{1, 2, 4} {
		pes := pes
		b.Run("PEs-"+itoa(pes), func(b *testing.B) {
			var res app.ParallelResult
			for i := 0; i < b.N; i++ {
				res = app.RunRadixParallel(app.NewSoCDMMUAllocator, pes)
			}
			if !res.Verified {
				b.Fatal("parallel radix output wrong")
			}
			b.ReportMetric(float64(res.TotalCycles), "sim-cycles")
			b.ReportMetric(res.Speedup, "speedup")
		})
	}
}

// ---- Figures 11-13: algorithm micro-benchmarks ----

func BenchmarkFig12TerminalReduction(b *testing.B) {
	for _, size := range []int{5, 10, 50} {
		size := size
		g := rag.Chain(size, size)
		b.Run(sizeName(size, size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mx := g.Matrix()
				pdda.Reduce(mx)
			}
		})
	}
}

func BenchmarkFig13DDUDetect(b *testing.B) {
	u, err := ddu.New(ddu.Config{Procs: 50, Resources: 50})
	if err != nil {
		b.Fatal(err)
	}
	if err := u.Load(rag.Chain(50, 50).Matrix()); err != nil {
		b.Fatal(err)
	}
	var res ddu.Result
	for i := 0; i < b.N; i++ {
		res = u.Detect()
	}
	b.ReportMetric(float64(res.Steps), "hw-steps")
}

// ---- Prior-work baseline comparison (Section 3.3.2 complexity ladder) ----

func BenchmarkDetectorBaselines(b *testing.B) {
	rng := det.New(11)
	graphs := make([]*rag.Graph, 32)
	for i := range graphs {
		graphs[i] = rag.Random(rng, 10, 10, 0.7, 0.3)
	}
	b.Run("PDDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pdda.DetectGraph(graphs[i%len(graphs)])
		}
	})
	b.Run("Holt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pdda.DetectHolt(graphs[i%len(graphs)])
		}
	})
	b.Run("Shoshani", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pdda.DetectShoshani(graphs[i%len(graphs)])
		}
	})
	b.Run("Leibfried", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pdda.DetectLeibfried(graphs[i%len(graphs)])
		}
	})
	b.Run("DFS-oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graphs[i%len(graphs)].HasCycle()
		}
	})
}

// ---- Ablation: packed bit-plane reduction vs naive cell-by-cell ----

func BenchmarkAblationPackedVsNaive(b *testing.B) {
	g := rag.Random(det.New(3), 50, 50, 0.7, 0.3)
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mx := g.Matrix()
			pdda.Reduce(mx)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mx := g.Matrix()
			pdda.ReduceCells(mx)
		}
	})
}

// ---- Bitset engine vs per-cell engine across geometries ----
//
// The go-test flavor of the BENCH_bitset.json comparison (deltasim
// -bench-bitset): the word-parallel reduction against the per-cell
// reference engine at 64x64, 1kx1k and 16kx16k, plus the zero-allocation
// graph-detect path.  Request density scales down with n so per-row request
// degree stays realistic at 16k; the cell engine scans every cell per pass
// regardless of density.
func BenchmarkBitsetReduce(b *testing.B) {
	points := []struct {
		label string
		m, n  int
		pReq  float64
	}{
		{"64x64", 64, 64, 0.15},
		{"1kx1k", 1024, 1024, 0.02},
		{"16kx16k", 16384, 16384, 0.002},
	}
	for _, pt := range points {
		pt := pt
		b.Run(pt.label, func(b *testing.B) {
			if pt.m >= 16384 && testing.Short() {
				b.Skip("16k cell sweep takes seconds per op")
			}
			g := rag.Random(det.New(1), pt.m, pt.n, 0.7, pt.pReq)
			pristine := g.Matrix()
			work := pristine.Clone()
			b.Run("cell", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					work.CopyFrom(pristine)
					pdda.ReduceCells(work)
				}
			})
			b.Run("bitset", func(b *testing.B) {
				var sc pdda.Scratch
				b.ReportAllocs()
				pdda.ReduceInto(&sc, pristine)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pdda.ReduceInto(&sc, pristine)
				}
			})
		})
	}
}

// BenchmarkBitsetDetectGraph measures the steady-state fuzz-executor scan:
// graph-to-matrix mapping plus full reduction in caller-owned scratch.  The
// allocs/op column must read 0 (gated by TestDetectDoesNotAllocate).
func BenchmarkBitsetDetectGraph(b *testing.B) {
	g := rag.Random(det.New(1), 1024, 1024, 0.7, 0.02)
	var sc pdda.Scratch
	b.ReportAllocs()
	pdda.DetectGraphInto(&sc, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdda.DetectGraphInto(&sc, g)
	}
}

// ---- Ablation: DAU livelock threshold sensitivity ----

func BenchmarkAblationDAULivelockThreshold(b *testing.B) {
	for _, thr := range []int{1, 3, 6} {
		thr := thr
		b.Run(thresholdName(thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u, err := dau.New(dau.Config{Procs: 4, Resources: 4, LivelockThreshold: thr})
				if err != nil {
					b.Fatal(err)
				}
				driveContention(b, u)
			}
		})
	}
}

// driveContention replays a short high-contention command tape.
func driveContention(b *testing.B, u *dau.Unit) {
	for p := 0; p < 4; p++ {
		u.SetPriority(p, daa.Priority(4-p)) // inverted priorities provoke give-ups
	}
	rng := det.New(99)
	for step := 0; step < 120; step++ {
		p, q := rng.Intn(4), rng.Intn(4)
		if u.Holder(q) == p {
			if _, _, err := u.Release(p, q); err != nil {
				b.Fatal(err)
			}
			continue
		}
		st, _, err := u.Request(p, q)
		if err != nil {
			b.Fatal(err)
		}
		if st.GiveUp {
			for _, h := range u.Avoider().Graph().HeldBy(p) {
				if _, _, err := u.Release(p, h); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// ---- Ablation: bus arbitration policy under contention ----

func BenchmarkAblationBusArbitration(b *testing.B) {
	run := func(policy sim.Arbitration) (end sim.Cycles, stall sim.Cycles) {
		s := sim.New()
		s.Bus.SetArbitration(policy)
		for pe := 0; pe < 4; pe++ {
			s.Spawn("pe", pe, func(p *sim.Proc) {
				for i := 0; i < 200; i++ {
					s.Bus.Transact(p, 4)
					p.Delay(2)
				}
			})
		}
		return s.Run(), s.Bus.StallCycles
	}
	b.Run("FCFS", func(b *testing.B) {
		var end, stall sim.Cycles
		for i := 0; i < b.N; i++ {
			end, stall = run(sim.ArbFCFS)
		}
		b.ReportMetric(float64(end), "sim-cycles")
		b.ReportMetric(float64(stall), "stall-cycles")
	})
	b.Run("priority", func(b *testing.B) {
		var end, stall sim.Cycles
		for i := 0; i < b.N; i++ {
			end, stall = run(sim.ArbPriority)
		}
		b.ReportMetric(float64(end), "sim-cycles")
		b.ReportMetric(float64(stall), "stall-cycles")
	})
}

// ---- helpers ----

func sizeName(p, r int) string {
	return itoa(p) + "x" + itoa(r)
}

func thresholdName(t int) string { return "threshold-" + itoa(t) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}

func report(b *testing.B, ok bool, appCycles, algCycles float64) {
	b.Helper()
	if !ok {
		b.Fatal("scenario outcome check failed")
	}
	b.ReportMetric(appCycles, "sim-cycles")
	b.ReportMetric(algCycles, "alg-cycles")
}

func hwBackend(b *testing.B) func() app.AvoidanceBackend {
	return func() app.AvoidanceBackend {
		be, err := app.NewHardwareAvoidance(5, 5)
		if err != nil {
			b.Fatal(err)
		}
		return be
	}
}

func swBackend(b *testing.B) func() app.AvoidanceBackend {
	return func() app.AvoidanceBackend {
		be, err := app.NewSoftwareAvoidance(5, 5)
		if err != nil {
			b.Fatal(err)
		}
		return be
	}
}

// ---- Campaign engine / sim hot path ----

// BenchmarkSimDispatch measures the cost of one scheduled timer event:
// push + pop on the event heap plus the resume/yield handshake.  The
// acceptance gate is 0 allocs/op — the de-boxed heap must not allocate in
// steady state.
func BenchmarkSimDispatch(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	s.Spawn("bench", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	s.Run()
}

// BenchmarkChaosCampaign compares a sequential seed sweep against the
// worker-pool sharded one (the `deltasim -parallel` path).  Output identity
// between the two is asserted by the tests; this measures the wall-clock
// ratio that `make bench-campaign` records in BENCH_campaign.json.
func BenchmarkChaosCampaign(b *testing.B) {
	cfg := experiments.DefaultChaosConfig()
	cfg.Seeds = 32
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", campaign.DefaultWorkers()},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc := &experiments.RunCtx{Parallel: tc.workers}
				if _, _, err := experiments.RunChaosCampaign(cfg, rc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Deltalint: full-module static analysis ----

// BenchmarkDeltalint runs every analysis pass over the whole module, the
// same work `make lint` does.  The load is measured too (it dominates a cold
// run), so one iteration is one end-to-end lint; the CI budget for the whole
// thing is well under 30s.
func BenchmarkDeltalint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := framework.LoadModule(".", "./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := framework.Run(pkgs, passes.All())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("lint tree not clean: %d finding(s), first: %s", len(diags), diags[0].Message)
		}
	}
}

// TestDeltalintTimeBudget guards `make lint`'s wall clock: one full-module
// lint (load plus all ten passes, the BenchmarkDeltalint body) must finish
// inside DELTALINT_BUDGET_MS, defaulting to 3400 ms — roughly twice the
// pre-summary-engine seed time — so the interprocedural layer cannot
// quietly regress the merge gate.  Override the budget via the environment
// on slower machines.  Race-detector builds multiply the budget by 6:
// the instrumentation slows type-checking and the passes several-fold,
// and the budget guards the uninstrumented merge gate, not -race runs.
func TestDeltalintTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock budget is not meaningful under -short")
	}
	budget := 3400 * time.Millisecond
	if raceEnabled {
		budget *= 6
	}
	if s := os.Getenv("DELTALINT_BUDGET_MS"); s != "" {
		ms, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("DELTALINT_BUDGET_MS=%q: %v", s, err)
		}
		budget = time.Duration(ms) * time.Millisecond
	}
	start := time.Now()
	pkgs, err := framework.LoadModule(".", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run(pkgs, passes.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("lint tree not clean: %d finding(s), first: %s", len(diags), diags[0].Message)
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("full-module deltalint took %v, over the %v budget (override with DELTALINT_BUDGET_MS)", elapsed, budget)
	}
}
